"""Parallel query execution: the ``search_many`` batch API.

The seed harness runs strictly serially, yet the ROADMAP's north star is
serving heavy multi-user traffic as fast as the hardware allows.  This
module fans a batch of queries over a pool of workers:

* **fork backend** (default where available, i.e. Linux/macOS CPython):
  a process pool created with the ``fork`` start method.  The read-only
  graph, config and workload are captured in a module global *before*
  forking, so children inherit them through copy-on-write memory --
  nothing graph-sized is ever pickled.  Each worker builds its own
  :class:`~repro.similarity.scoring.ScoringFunction` (scoring memos are
  not shareable across processes) and, optionally, its own
  :class:`~repro.perf.cache.CandidateCache`.
* **thread backend**: a thread pool with one engine per worker thread.
  Correctness-equivalent; throughput-bound by the GIL, but the only pool
  option on platforms without ``fork``.
* **serial backend**: plain loop, one engine (``workers <= 1``).
* **sharded execution** (``shards=N``): queries run one at a time, but
  each star query is split across N graph shards and merged exactly
  (:class:`repro.shard.ShardedEngine`) -- parallelism *within* a query
  instead of across queries, the right shape for small batches of
  heavy queries.

Pool dispatch is cost-ordered (LPT): tasks are submitted to the shared
queue heaviest-first by :func:`estimate_query_cost`, so one expensive
query landing last cannot serialize the tail of the batch while other
workers idle.  Results are re-ordered by query index regardless.

The fork backend is *supervised*: a worker process dying mid-batch (OOM
kill, a ``crash`` fault spec, a segfault in native code) is detected,
the batch's unfinished queries are re-run serially in the parent on a
clean engine -- without fault injection, so a poisoned workload cannot
kill the parent too -- and the crash is recorded in
:attr:`BatchResult.worker_crashes` / :attr:`BatchResult.requeued`.
Callers always get a complete, ordered result set.

Every backend runs the exact same per-query code path, so results are
byte-identical across backends and worker counts -- the parity suite
asserts it.  Budgets are passed as *specs* (constructor kwargs) and
instantiated per query inside the worker; deterministic budgets
(``max_nodes`` etc.) therefore trip at identical points regardless of the
backend.  Per-query :class:`~repro.runtime.budget.SearchReport`\\ s,
engine counters and per-worker cache stats are merged into the
:class:`BatchResult`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.framework import Star
from repro.core.matches import Match
from repro.errors import BudgetExceededError, SearchError
from repro.perf.cache import CacheStats, CandidateCache, attach_cache
from repro.query.model import Query, StarQuery
from repro.runtime.budget import Budget, SearchReport
from repro.similarity.scoring import ScoringConfig, ScoringFunction

#: Engine-construction keyword arguments forwarded to :class:`Star`.
ENGINE_OPTS = ("d", "alpha", "decomposition_method", "lam", "injective",
               "candidate_limit", "directed", "use_index", "use_semantic",
               "algorithm", "plan", "plan_model")


@dataclass
class QueryOutcome:
    """Result of one query inside a batch run."""

    index: int
    matches: List[Match]
    report: Optional[SearchReport]
    stats: Optional[Dict[str, int]]
    elapsed_s: float

    def result_key(self) -> Tuple:
        """Canonical (assignments, scores) identity -- the parity unit."""
        return tuple((m.key(), m.score) for m in self.matches)


@dataclass
class BatchResult:
    """Merged outcome of a ``search_many`` run."""

    outcomes: List[QueryOutcome]
    workers: int
    backend: str
    wall_s: float
    stats: Dict[str, int] = field(default_factory=dict)
    budget_exceeded: int = 0
    degraded: int = 0
    faults: int = 0
    #: Worker-death events detected during the run (fork backend only).
    worker_crashes: int = 0
    #: Queries whose worker died and that were re-run serially in the
    #: parent (each exactly once, on a clean engine).
    requeued: int = 0
    cache_stats: Optional[CacheStats] = None
    #: Merged :meth:`repro.obs.MetricsRegistry.as_dict` snapshot of the
    #: batch when observability was enabled around the call, else None.
    #: Fork workers report their own registries (reset at worker init, so
    #: the merge covers exactly this batch); thread/serial backends share
    #: the caller's registry, so enable a fresh tracer around the batch
    #: for exact per-batch numbers.
    metrics: Optional[Dict[str, dict]] = None
    #: Query indexes in pool-submission order (LPT: heaviest first);
    #: None for serial and sharded runs, which have no pool.
    dispatch_order: Optional[List[int]] = None

    @property
    def matches(self) -> List[List[Match]]:
        return [outcome.matches for outcome in self.outcomes]

    @property
    def total_matches(self) -> int:
        return sum(len(outcome.matches) for outcome in self.outcomes)

    @property
    def queries_per_s(self) -> float:
        return len(self.outcomes) / self.wall_s if self.wall_s > 0 else 0.0

    def result_keys(self) -> List[Tuple]:
        """Per-query canonical results, for parity comparisons."""
        return [outcome.result_key() for outcome in self.outcomes]

    def summary(self) -> str:
        line = (
            f"{len(self.outcomes)} quer(ies) via {self.backend} x{self.workers} "
            f"in {self.wall_s * 1000:.1f} ms "
            f"({self.queries_per_s:.1f} q/s), {self.total_matches} match(es)"
        )
        if self.budget_exceeded or self.faults:
            line += (f", {self.budget_exceeded} budget-exceeded, "
                     f"{self.faults} fault(s)")
        if self.worker_crashes:
            line += (f", {self.worker_crashes} worker crash(es) "
                     f"({self.requeued} quer(ies) recovered serially)")
        if self.cache_stats is not None:
            line += f"; {self.cache_stats.summary()}"
        return line


# ----------------------------------------------------------------------
# Per-worker state.  For the fork backend this global is populated in the
# parent before the pool is created, so children inherit it via fork; the
# per-worker engine is then built once per process by _init_worker.  For
# the thread backend each thread builds its engine into thread-local
# storage.  Engines are never shared between workers.
# ----------------------------------------------------------------------
_FORK_CTX: Dict[str, Any] = {}
_THREAD_LOCAL = threading.local()


def _build_engine(graph, scorer, config, engine_opts, cache_opts,
                  fault_specs=None, mmap_store=None):
    if scorer is None:
        scorer = ScoringFunction(graph, config)
    if mmap_store is not None \
            and engine_opts.get("use_index") != "off" \
            and getattr(scorer, "graph_index", None) is None:
        # Zero-copy path: attach the RKGS2 store's index columns instead
        # of letting Star build (and each fork worker duplicate) one.
        from repro.store.attach import attach_mmap_index

        scorer.graph_index = attach_mmap_index(
            mmap_store, graph, mode=engine_opts.get("use_index", "auto"))
    if mmap_store is not None \
            and engine_opts.get("use_semantic", "auto") != "off" \
            and getattr(scorer, "semantic_tier", None) is None:
        # Likewise for the semantic tier: the store's embedding columns
        # are shared zero-copy instead of each worker re-embedding the
        # graph on first engagement.
        from repro.store.attach import attach_mmap_semantic

        scorer.semantic_tier = attach_mmap_semantic(
            mmap_store, graph,
            mode=engine_opts.get("use_semantic", "auto"))
    if cache_opts is not None:
        attach_cache(scorer, **cache_opts)
    if fault_specs:
        from repro.runtime.faults import FaultSpec, faulty

        specs = [s if isinstance(s, FaultSpec) else FaultSpec.from_dict(s)
                 for s in fault_specs]
        scorer = faulty(scorer, specs=specs)
    return Star(graph, scorer=scorer, **engine_opts)


def _search_one(engine: Star, index: int, query, k: int,
                budget_spec: Optional[Dict[str, Any]]) -> QueryOutcome:
    budget = Budget(**budget_spec) if budget_spec is not None else None
    start = time.perf_counter()
    try:
        matches = engine.search(query, k, budget=budget)
    except BudgetExceededError:  # strict-mode trip counts as empty
        matches = []
    elapsed = time.perf_counter() - start
    return QueryOutcome(
        index=index,
        matches=matches,
        report=engine.last_report,
        stats=engine.last_stats,
        elapsed_s=elapsed,
    )


def _worker_token() -> str:
    return f"{os.getpid()}:{threading.get_ident()}"


def _init_fork_worker() -> None:
    ctx = _FORK_CTX
    ctx["engine"] = _build_engine(
        ctx["graph"], None, ctx["config"], ctx["engine_opts"],
        ctx["cache_opts"], ctx.get("fault_specs"),
        mmap_store=ctx.get("mmap_store"),
    )
    # The child inherited the parent's active tracer through the fork;
    # reset it so this worker's snapshots cover exactly its batch share.
    tracer = obs.active_tracer()
    if tracer is not None:
        tracer.reset()


def _obs_snapshot() -> Optional[Dict[str, dict]]:
    return obs.snapshot(include_samples=True)


def _run_fork_task(index: int):
    ctx = _FORK_CTX
    engine: Star = ctx["engine"]
    outcome = _search_one(
        engine, index, ctx["queries"][index], ctx["k"], ctx["budget_spec"]
    )
    cache = engine.scorer.candidate_cache
    snapshot = cache.stats.as_dict() if cache is not None else None
    return outcome, _worker_token(), snapshot, _obs_snapshot()


def _run_thread_task(args):
    (graph, config, engine_opts, cache_opts, fault_specs, mmap_store,
     index, query, k, budget_spec) = args
    if fault_specs:
        # Chaos path: injector call counts are stateful, so faulted
        # engines are never reused across tasks or batches.
        engine = _build_engine(graph, None, config, engine_opts, cache_opts,
                               fault_specs, mmap_store=mmap_store)
    else:
        engine = getattr(_THREAD_LOCAL, "engine", None)
        if engine is None or engine.graph is not graph:
            engine = _build_engine(graph, None, config, engine_opts,
                                   cache_opts, mmap_store=mmap_store)
            _THREAD_LOCAL.engine = engine
    outcome = _search_one(engine, index, query, k, budget_spec)
    cache = engine.scorer.candidate_cache
    snapshot = cache.stats.as_dict() if cache is not None else None
    # Threads share the caller's registry; the parent snapshots it once.
    return outcome, _worker_token(), snapshot, None


def _merge_cache_stats(
    snapshots: Dict[str, Optional[Dict[str, int]]]
) -> Optional[CacheStats]:
    """Sum the final per-worker snapshots (keyed by worker token)."""
    merged: Optional[CacheStats] = None
    for snapshot in snapshots.values():
        if snapshot is None:
            continue
        if merged is None:
            merged = CacheStats()
        merged.merge(CacheStats.from_dict(snapshot))
    return merged


def _merge_obs_snapshots(
    obs_snapshots: Dict[str, Optional[Dict[str, dict]]]
) -> Optional[Dict[str, dict]]:
    """Merge fork workers' registry snapshots; fold into the caller's.

    Each worker's final (cumulative) snapshot is merged exactly --
    counters sum, gauges max, histograms concatenate samples.  When the
    caller still has observability enabled, the merged totals are folded
    into its live registry so ``obs.snapshot()`` after ``search_many``
    reflects the batch regardless of backend.
    """
    collected = [snap for snap in obs_snapshots.values() if snap is not None]
    if not collected:
        return obs.snapshot()  # thread/serial: shared registry (or None)
    from repro.obs import MetricsRegistry

    merged = MetricsRegistry.merged(collected)
    live = obs.registry()
    if live is not None:
        live.merge_snapshot(merged.as_dict(include_samples=True))
    return merged.as_dict()


def _finalize(outcomes: List[QueryOutcome], workers: int, backend: str,
              wall_s: float,
              snapshots: Dict[str, Optional[Dict[str, int]]],
              metrics: Optional[Dict[str, dict]] = None,
              worker_crashes: int = 0, requeued: int = 0) -> BatchResult:
    outcomes.sort(key=lambda outcome: outcome.index)
    merged_stats: Dict[str, int] = {}
    budget_exceeded = degraded = faults = 0
    for outcome in outcomes:
        if outcome.stats:
            for name, value in outcome.stats.items():
                merged_stats[name] = merged_stats.get(name, 0) + value
        report = outcome.report
        if report is not None:
            if report.reason is not None:
                budget_exceeded += 1
            if report.degraded:
                degraded += 1
            faults += len(report.faults)
    return BatchResult(
        outcomes=outcomes,
        workers=workers,
        backend=backend,
        wall_s=wall_s,
        stats=merged_stats,
        budget_exceeded=budget_exceeded,
        degraded=degraded,
        faults=faults,
        worker_crashes=worker_crashes,
        requeued=requeued,
        cache_stats=_merge_cache_stats(snapshots),
        metrics=metrics,
    )


def estimate_query_cost(graph, query: Union[Query, StarQuery]) -> int:
    """Cheap heuristic proxy for a query's candidate-generation work.

    Sums, over the query's nodes, the graph posting sizes of their
    expanded tokens plus the subtype-closure size of their type
    constraint -- i.e. the shortlist volume the scorer will walk.  Pure
    index lookups, no scoring; used only to *order* pool dispatch (LPT),
    so it needs to rank, not to be exact.

    This is the cold-start fallback: when a fitted
    :class:`repro.plan.CostModel` is available, :func:`dispatch_order`
    prefers its per-query cost predictions over this proxy.
    """
    from repro.core.candidates import expanded_query_tokens

    if isinstance(query, StarQuery):
        qnodes = [query.pivot] + [leaf for leaf, _edge in query.leaves]
    else:
        qnodes = list(query.nodes)
    token_index = graph._token_index
    cost = 0
    for qnode in qnodes:
        desc = qnode.descriptor
        if desc.is_wildcard and not qnode.type:
            cost += graph.num_nodes  # full-scan fallback
            continue
        for token in expanded_query_tokens(desc):
            cost += len(token_index.get(token.lower(), ()))
        if qnode.type:
            cost += len(graph.nodes_of_subtype(qnode.type))
    return cost


class _FeatureScorer:
    """The minimal scorer surface feature extraction needs (graph +
    cache-warmth flag) -- lets dispatch ordering cost queries without
    building a full :class:`ScoringFunction` per batch."""

    __slots__ = ("graph", "_node_cache")

    def __init__(self, graph) -> None:
        self.graph = graph
        self._node_cache: Dict = {}


def dispatch_order(graph, queries: Sequence[Union[Query, StarQuery]],
                   model=None, d: int = 1, k: int = 10) -> List[int]:
    """Query indexes sorted heaviest-first (longest-processing-time).

    With a shared task queue, LPT submission bounds the idle-worker
    skew a heavy tail query causes: the expensive work starts first and
    cheap queries pack around it, instead of every other worker idling
    while the last-submitted heavy query runs alone.

    With a warm fitted :class:`repro.plan.CostModel` (*model*), ordering
    uses its predicted per-query cost of the static default plan -- the
    learned estimate subsumes the posting-mass proxy (it knows, e.g.,
    that a broad-pivot d=2 star is propagation-bound, not
    shortlist-bound).  Any cold prediction falls the whole ordering back
    to the heuristic, keeping ranks comparable.
    """
    if model is not None:
        from repro.plan.features import extract_features
        from repro.plan.planner import default_static_arm

        shim = _FeatureScorer(graph)
        predicted: List[float] = []
        for query in queries:
            features = extract_features(shim, query, k, d=d)
            pred = model.predict(
                features.class_key, default_static_arm(features.class_key),
                features.vector,
            )
            if pred is None:  # cold arm: mixed scales would misrank
                predicted = []
                break
            predicted.append(pred)
        if len(predicted) == len(queries) and predicted:
            return sorted(range(len(queries)),
                          key=lambda i: (-predicted[i], i))
    costs = [estimate_query_cost(graph, query) for query in queries]
    return sorted(range(len(queries)), key=lambda i: (-costs[i], i))


def fork_available() -> bool:
    """True when the fork start method exists (Linux/macOS CPython)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_backend(backend: str, workers: int) -> str:
    """Normalize a backend request against platform capabilities."""
    if backend not in ("auto", "fork", "thread", "serial"):
        raise SearchError(
            f"unknown backend {backend!r} "
            "(expected auto, fork, thread or serial)"
        )
    if workers <= 1:
        return "serial"
    if backend == "auto":
        return "fork" if fork_available() else "thread"
    if backend == "fork" and not fork_available():
        return "thread"
    return backend


def search_many(
    graph,
    queries: Sequence[Union[Query, StarQuery]],
    k: int,
    workers: int = 1,
    *,
    config: Optional[ScoringConfig] = None,
    scorer: Optional[ScoringFunction] = None,
    cache: Union[bool, CandidateCache, None] = False,
    budget_spec: Optional[Dict[str, Any]] = None,
    fault_specs: Optional[Sequence[Any]] = None,
    backend: str = "auto",
    shards: Optional[int] = None,
    partition: str = "hash",
    d: int = 1,
    alpha: Optional[float] = None,
    decomposition_method: Optional[str] = None,
    lam: float = 1.0,
    injective: bool = True,
    candidate_limit: Optional[int] = None,
    directed: bool = False,
    use_index: str = "auto",
    use_semantic: str = "auto",
    algorithm: str = "auto",
    plan: str = "static",
    plan_model: Optional[str] = None,
    mmap_store: Optional[str] = None,
) -> BatchResult:
    """Run *queries* top-k and return per-query matches plus merged stats.

    Args:
        graph: the shared, read-only data graph.
        queries: any mix of general and star queries.
        k: result size per query.
        workers: worker count; 1 = serial in-process execution.
        shards: when set (>= 1), run queries one at a time on a
            :class:`repro.shard.ShardedEngine` with this many graph
            shards -- parallelism *within* each star query instead of
            across queries.  Mutually exclusive with ``workers > 1``
            and with ``fault_specs``.
        partition: shard partition strategy (``hash`` / ``pivot-type``);
            only meaningful with ``shards``.
        config: scoring configuration for per-worker scorers.
        scorer: serial-mode-only pre-built scorer (its memo state is
            reused; supplying one with ``workers > 1`` is an error --
            scorers cannot be shared across processes).
        cache: False/None = no candidate cache (seed behavior); True =
            attach a fresh per-worker :class:`CandidateCache`; an
            existing cache instance is used directly (serial mode only).
        budget_spec: :class:`Budget` constructor kwargs, instantiated
            per query inside the worker (picklable, deterministic).
        fault_specs: chaos-testing only -- a list of
            :class:`~repro.runtime.faults.FaultSpec` objects (or their
            ``as_dict`` forms) injected into each *worker's* engine.
            A ``"crash"`` spec kills worker processes; the supervised
            fork backend detects the deaths and recovers the affected
            queries serially on a clean (un-faulted) engine.
        backend: ``auto`` / ``fork`` / ``thread`` / ``serial``;
            ``auto`` picks fork where available, threads otherwise.
            A ``fork`` request degrades to threads on non-fork platforms.
        d, alpha, decomposition_method, lam, injective, candidate_limit,
            directed, use_index, use_semantic, algorithm: forwarded to
            :class:`repro.core.framework.Star` (each worker builds --
            and, per ``use_index``/``use_semantic``, indexes -- its own
            engine).  ``alpha``/``decomposition_method`` left as None
            take the engine defaults *unpinned*, so a planner may tune
            them per query; passing explicit values pins them.
        plan, plan_model: per-worker planning mode and fitted cost-model
            path (``Star(plan=..., plan_model=...)``); each worker gets
            its own planner.  ``plan_model`` additionally upgrades pool
            dispatch ordering from the posting-mass heuristic to the
            learned cost model's predictions.
        mmap_store: path of an ``RKGS2`` store (``repro compact``)
            whose index columns each worker attaches zero-copy instead
            of building an index -- every process maps the same file
            (one OS page cache machine-wide).  Ignored when
            ``use_index`` is ``off``.

    The headline invariant: for any fixed inputs, the returned
    ``(assignment, score)`` lists are byte-identical across every
    ``workers``/``backend`` combination and cache setting.
    """
    if k <= 0:
        raise SearchError(f"k must be positive, got {k}")
    if workers < 1:
        raise SearchError(f"workers must be >= 1, got {workers}")
    engine_opts = {
        "d": d, "alpha": alpha, "decomposition_method": decomposition_method,
        "lam": lam, "injective": injective,
        "candidate_limit": candidate_limit, "directed": directed,
        "use_index": use_index, "use_semantic": use_semantic,
        "algorithm": algorithm, "plan": plan, "plan_model": plan_model,
    }
    dispatch_model = None
    if plan_model is not None:
        from repro.plan.model import CostModel, PlanModelError

        try:
            dispatch_model = CostModel.load(plan_model)
        except PlanModelError:
            dispatch_model = None  # heuristic dispatch; workers re-raise
    if shards is not None:
        return _search_many_sharded(
            graph, queries, k, shards=shards, partition=partition,
            workers=workers, config=config, scorer=scorer, cache=cache,
            budget_spec=budget_spec, fault_specs=fault_specs,
            backend=backend, engine_opts=engine_opts,
            mmap_store=mmap_store,
        )
    chosen = resolve_backend(backend, workers)
    if scorer is not None and chosen != "serial":
        raise SearchError(
            "a pre-built scorer is only usable with workers=1 "
            "(per-worker scorers are built inside each worker)"
        )
    if isinstance(cache, CandidateCache) and chosen != "serial":
        raise SearchError(
            "a cache instance is only usable with workers=1; pass "
            "cache=True to give each worker its own cache"
        )
    cache_opts: Optional[Dict[str, Any]] = {} if cache is True else None

    queries = list(queries)
    start = time.perf_counter()
    if chosen == "serial":
        engine = _build_engine(
            graph, scorer,
            config, engine_opts,
            None if isinstance(cache, CandidateCache) else cache_opts,
            fault_specs, mmap_store=mmap_store,
        )
        if isinstance(cache, CandidateCache):
            attach_cache(engine.scorer, cache)
        outcomes = [
            _search_one(engine, i, query, k, budget_spec)
            for i, query in enumerate(queries)
        ]
        attached = engine.scorer.candidate_cache
        snapshots = {
            _worker_token(): attached.stats.as_dict() if attached else None
        }
        return _finalize(outcomes, 1, chosen, time.perf_counter() - start,
                         snapshots, metrics=obs.snapshot())

    worker_crashes = 0
    requeued = 0
    if chosen == "fork":
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        _FORK_CTX.clear()
        _FORK_CTX.update(
            graph=graph, config=config, engine_opts=engine_opts,
            cache_opts=cache_opts, queries=queries, k=k,
            budget_spec=budget_spec, fault_specs=fault_specs,
            mmap_store=mmap_store,
        )
        ctx = multiprocessing.get_context("fork")
        rows = []
        lost: List[int] = []
        order = dispatch_order(graph, queries, model=dispatch_model, d=d, k=k)
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx,
                initializer=_init_fork_worker,
            )
            try:
                # LPT: heaviest queries hit the shared queue first, so
                # the batch's tail is cheap work, not a straggler.
                futures = {i: pool.submit(_run_fork_task, i)
                           for i in order}
                for i in range(len(queries)):
                    try:
                        rows.append(futures[i].result())
                    except BrokenProcessPool:
                        # A worker process died (crash fault, OOM kill,
                        # segfault): this future's work is lost.  The
                        # executor is broken from here on, so every
                        # remaining future lands in the same branch.
                        lost.append(i)
            finally:
                pool.shutdown(wait=True)
        finally:
            _FORK_CTX.clear()
        if lost:
            # Supervised recovery: the batch must still complete.  The
            # lost queries re-run serially in the parent on a clean
            # engine -- fault injection deliberately NOT reapplied, so
            # a poisoned workload cannot take the parent down too.
            worker_crashes = 1
            requeued = len(lost)
            engine = _build_engine(graph, None, config, engine_opts,
                                   cache_opts, mmap_store=mmap_store)
            for i in lost:
                outcome = _search_one(engine, i, queries[i], k, budget_spec)
                rows.append((outcome, _worker_token(), None, None))
    else:  # thread
        from concurrent.futures import ThreadPoolExecutor

        tasks = [
            (graph, config, engine_opts, cache_opts, fault_specs,
             mmap_store, i, query, k, budget_spec)
            for i, query in enumerate(queries)
        ]
        order = dispatch_order(graph, queries, model=dispatch_model, d=d, k=k)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {i: pool.submit(_run_thread_task, tasks[i])
                       for i in order}
            rows = [futures[i].result() for i in range(len(tasks))]

    outcomes = [row[0] for row in rows]
    snapshots = {token: snapshot for _o, token, snapshot, _m in rows}
    obs_snapshots = {token: metric for _o, token, _s, metric in rows}
    result = _finalize(outcomes, workers, chosen,
                       time.perf_counter() - start, snapshots,
                       metrics=_merge_obs_snapshots(obs_snapshots),
                       worker_crashes=worker_crashes, requeued=requeued)
    result.dispatch_order = order
    return result


def _search_many_sharded(
    graph, queries, k, *, shards, partition, workers, config, scorer,
    cache, budget_spec, fault_specs, backend, engine_opts,
    mmap_store=None,
) -> BatchResult:
    """``search_many`` body for ``shards=N``: per-query shard parallelism.

    Queries run one at a time through a single
    :class:`~repro.shard.ShardedEngine`; each star query fans out over
    the shard workers and merges exactly.  Worker parallelism and fault
    injection are cross-*query* mechanisms and do not compose with this
    mode.
    """
    from repro.shard import ShardedEngine

    if workers > 1:
        raise SearchError(
            "shards= runs queries serially with per-query shard "
            "parallelism; it cannot be combined with workers > 1"
        )
    if fault_specs:
        raise SearchError(
            "fault_specs target per-query worker engines and cannot be "
            "combined with shards="
        )
    shard_backend = {"auto": "auto", "fork": "fork",
                     "serial": "serial", "thread": "serial"}.get(backend)
    if shard_backend is None:
        raise SearchError(
            f"unknown backend {backend!r} "
            "(expected auto, fork, thread or serial)"
        )
    if mmap_store is not None \
            and engine_opts.get("use_index") != "off" \
            and getattr(scorer, "graph_index", None) is None:
        # Attach before ShardedEngine construction: its _rebuild sees
        # the mmap index on the scorer and has fork workers re-open the
        # store file instead of exporting a shm segment.
        from repro.store.attach import attach_mmap_index

        if scorer is None:
            scorer = ScoringFunction(graph, config)
        scorer.graph_index = attach_mmap_index(
            mmap_store, graph, mode=engine_opts.get("use_index", "auto"))
    if mmap_store is not None \
            and engine_opts.get("use_semantic", "auto") != "off" \
            and getattr(scorer, "semantic_tier", None) is None:
        from repro.store.attach import attach_mmap_semantic

        if scorer is None:
            scorer = ScoringFunction(graph, config)
        scorer.semantic_tier = attach_mmap_semantic(
            mmap_store, graph,
            mode=engine_opts.get("use_semantic", "auto"))
    start = time.perf_counter()
    engine = ShardedEngine(
        graph, scorer=scorer, config=config, shards=shards,
        partition=partition, backend=shard_backend, **engine_opts,
    )
    try:
        if cache is True:
            attach_cache(engine.scorer)
        elif isinstance(cache, CandidateCache):
            attach_cache(engine.scorer, cache)
        outcomes = [
            _search_one(engine, i, query, k, budget_spec)
            for i, query in enumerate(queries)
        ]
    finally:
        engine.close()
    attached = engine.scorer.candidate_cache
    snapshots = {
        _worker_token(): attached.stats.as_dict() if attached else None
    }
    return _finalize(outcomes, shards, f"shard-{engine.backend}",
                     time.perf_counter() - start, snapshots,
                     metrics=obs.snapshot())
