"""``repro.perf``: the cross-query performance layer.

Makes repeated and concurrent query traffic fast *without changing any
result*:

* :class:`CandidateCache` -- LRU of scored candidate lists shared across
  queries, keyed on (graph uid+version, scoring-config fingerprint,
  canonical descriptor key, limit); see :mod:`repro.perf.cache`.
* :func:`search_many` -- batch query execution over a fork-based process
  pool (thread/serial fallback), merging per-query reports, engine
  counters and cache stats; see :mod:`repro.perf.parallel`.

The headline invariant, asserted by ``tests/test_perf_parallel.py``:
cached/parallel runs return byte-identical match lists and scores to
serial uncached runs.
"""

from repro.perf.cache import (
    CacheStats,
    CandidateCache,
    attach_cache,
    detach_cache,
)
from repro.perf.parallel import (
    BatchResult,
    QueryOutcome,
    dispatch_order,
    estimate_query_cost,
    fork_available,
    resolve_backend,
    search_many,
)

__all__ = [
    "BatchResult",
    "CacheStats",
    "CandidateCache",
    "QueryOutcome",
    "attach_cache",
    "detach_cache",
    "dispatch_order",
    "estimate_query_cost",
    "fork_available",
    "resolve_backend",
    "search_many",
]
