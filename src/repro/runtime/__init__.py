"""Search-runtime robustness layer: budgets, anytime reports, faults.

* :class:`Budget` / :class:`SearchReport` -- the deadline/budget-bounded
  anytime-search contract every engine checkpoints against.
* :mod:`repro.runtime.faults` -- deterministic fault injection wrapping
  the scoring and graph-adjacency substrates.
"""

from repro.runtime.budget import (
    REASON_DEADLINE,
    REASON_FAULT,
    REASON_JOIN_STEPS,
    REASON_MESSAGES,
    REASON_NODES,
    Budget,
    SearchReport,
)
from repro.runtime.faults import (
    FAULT_MODES,
    FAULT_SITES,
    SUBSTRATE_ERRORS,
    FaultInjector,
    FaultSpec,
    FaultyGraph,
    FaultyScorer,
    faulty,
    validate_score,
)

__all__ = [
    "Budget",
    "FAULT_MODES",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "FaultyGraph",
    "FaultyScorer",
    "REASON_DEADLINE",
    "REASON_FAULT",
    "REASON_JOIN_STEPS",
    "REASON_MESSAGES",
    "REASON_NODES",
    "SUBSTRATE_ERRORS",
    "SearchReport",
    "faulty",
    "validate_score",
]
