"""Search-runtime robustness layer: budgets, anytime reports, faults.

* :class:`Budget` / :class:`SearchReport` -- the deadline/budget-bounded
  anytime-search contract every engine checkpoints against.
* :mod:`repro.runtime.faults` -- deterministic fault injection wrapping
  the scoring and graph-adjacency substrates.
* :mod:`repro.runtime.slo` -- serving SLO classes and the monotone
  (class, degrade level) -> budget derivation behind degrade-before-shed.
"""

from repro.runtime.budget import (
    REASON_DEADLINE,
    REASON_FAULT,
    REASON_JOIN_STEPS,
    REASON_MESSAGES,
    REASON_NODES,
    Budget,
    SearchReport,
)
from repro.runtime.faults import (
    CRASH_EXIT_CODE,
    FAULT_MODES,
    FAULT_SITES,
    SUBSTRATE_ERRORS,
    FaultInjector,
    FaultSpec,
    FaultyGraph,
    FaultyScorer,
    faulty,
    validate_score,
)
from repro.runtime.slo import (
    DEGRADE_FACTOR,
    MAX_DEGRADE_LEVEL,
    MODES,
    SLO_CLASSES,
    SLOClass,
    derive_budget_spec,
    resolve_slo,
)

__all__ = [
    "Budget",
    "CRASH_EXIT_CODE",
    "DEGRADE_FACTOR",
    "FAULT_MODES",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "FaultyGraph",
    "FaultyScorer",
    "MAX_DEGRADE_LEVEL",
    "MODES",
    "REASON_DEADLINE",
    "REASON_FAULT",
    "REASON_JOIN_STEPS",
    "REASON_MESSAGES",
    "REASON_NODES",
    "SLOClass",
    "SLO_CLASSES",
    "SUBSTRATE_ERRORS",
    "SearchReport",
    "derive_budget_spec",
    "faulty",
    "resolve_slo",
    "validate_score",
]
