"""Deterministic fault injection for the search substrates.

Every search algorithm in this repository bottoms out in two substrates:
the scoring function (``F_N`` / ``F_E`` computations) and graph adjacency
access.  This module wraps both behind *fault points* so tests can prove
the engines degrade gracefully instead of hanging or crashing:

* :class:`FaultSpec` -- one planned fault: a site (see
  :data:`FAULT_SITES`), the 0-based call index at which it fires, and a
  mode:

  - ``"raise"``   -- raise :class:`~repro.errors.InjectedFaultError`;
  - ``"delay"``   -- sleep ``delay_ms`` (models a slow dependency; pair
    with a :class:`~repro.runtime.Budget` deadline);
  - ``"corrupt"`` -- corrupt the returned value, which the fault point's
    built-in validation then detects and converts to
    :class:`~repro.errors.DataCorruptionError` (corrupt-then-detect);
  - ``"crash"``   -- kill the *process* with ``os._exit`` (models an OOM
    kill / segfault of a pool worker).  Only meaningful inside a
    sacrificial worker process: the supervised pools in
    :mod:`repro.serve.supervisor` and :mod:`repro.perf.parallel` detect
    the death and recover; firing it in the main process kills the run.

* :class:`FaultInjector` -- counts calls per site and fires matching
  specs; :meth:`FaultInjector.from_seed` derives a deterministic plan
  from a seed.
* :func:`faulty` -- wraps a :class:`ScoringFunction` into a
  :class:`FaultyScorer` whose ``.graph`` is a :class:`FaultyGraph`, so
  any engine constructed over it exercises the fault points on both
  substrates without code changes.

Engine contract: without an anytime budget, injected faults propagate as
the structured :class:`~repro.errors.ReproError` subclasses above (never
raw ``KeyError`` / ``RuntimeError``); under an anytime budget, engines
catch :data:`SUBSTRATE_ERRORS` at their checkpoints, record the fault on
the budget, and keep returning best-so-far results.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import (
    DataCorruptionError,
    GraphError,
    InjectedFaultError,
    ScoringError,
    SearchError,
)

#: Fault points the harness knows how to wrap.
FAULT_SITES = (
    "scorer.node_score",
    "scorer.relation_score",
    "graph.neighbors",
    "graph.out_neighbors",
    "graph.in_neighbors",
)

FAULT_MODES = ("raise", "delay", "corrupt", "crash")

#: Exit code a ``"crash"`` fault kills its process with (distinguishable
#: from a clean exit in supervisor crash accounting and tests).
CRASH_EXIT_CODE = 70

#: Exceptions an engine may recover from at a checkpoint when running
#: under an anytime budget.  Budget trips are deliberately *not* here.
SUBSTRATE_ERRORS = (
    GraphError,
    ScoringError,
    InjectedFaultError,
    DataCorruptionError,
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault at a named site.

    Args:
        site: one of :data:`FAULT_SITES`.
        at_call: 0-based index of the call at which the fault fires.
        mode: one of :data:`FAULT_MODES`.
        delay_ms: sleep duration for ``"delay"`` mode.
        repeat: fire on *every* call with index >= ``at_call`` (e.g. a
            persistently slow or dead dependency) instead of just once.
    """

    site: str
    at_call: int = 0
    mode: str = "raise"
    delay_ms: float = 0.0
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise SearchError(
                f"unknown fault site {self.site!r}; choose from {FAULT_SITES}"
            )
        if self.mode not in FAULT_MODES:
            raise SearchError(
                f"unknown fault mode {self.mode!r}; choose from {FAULT_MODES}"
            )
        if self.at_call < 0:
            raise SearchError(f"at_call must be >= 0, got {self.at_call}")
        if self.delay_ms < 0:
            raise SearchError(f"delay_ms must be >= 0, got {self.delay_ms}")

    def as_dict(self) -> dict:
        """JSON-safe form (wire transport to serve/pool workers)."""
        return {
            "site": self.site, "at_call": self.at_call, "mode": self.mode,
            "delay_ms": self.delay_ms, "repeat": self.repeat,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`as_dict`; validates via ``__post_init__``."""
        try:
            return cls(
                site=data["site"],
                at_call=int(data.get("at_call", 0)),
                mode=data.get("mode", "raise"),
                delay_ms=float(data.get("delay_ms", 0.0)),
                repeat=bool(data.get("repeat", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SearchError(f"malformed fault spec {data!r}: {exc}") from None


class FaultInjector:
    """Counts substrate calls per site and fires matching fault specs."""

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = list(specs)
        self.calls = {site: 0 for site in FAULT_SITES}
        self.fired: List[Tuple[str, int, str]] = []

    @classmethod
    def from_seed(
        cls,
        seed: int,
        n_faults: int = 3,
        sites: Sequence[str] = FAULT_SITES,
        modes: Sequence[str] = ("raise",),
        window: int = 50,
    ) -> "FaultInjector":
        """Deterministic random fault plan: *n_faults* specs whose sites,
        modes and call indices (< *window*) are drawn from *seed*."""
        rng = random.Random(seed)
        specs = [
            FaultSpec(
                site=rng.choice(list(sites)),
                at_call=rng.randrange(window),
                mode=rng.choice(list(modes)),
                delay_ms=1.0,
            )
            for _ in range(n_faults)
        ]
        return cls(specs)

    # ------------------------------------------------------------------
    def enter(self, site: str) -> bool:
        """Register one call to *site*; fire any due spec.

        Returns True when a ``"corrupt"`` spec fired (the caller corrupts
        its result before validation); raises for ``"raise"`` specs;
        sleeps for ``"delay"`` specs.
        """
        index = self.calls[site]
        self.calls[site] = index + 1
        corrupt = False
        for spec in self.specs:
            if spec.site != site:
                continue
            if index != spec.at_call and not (spec.repeat and index > spec.at_call):
                continue
            self.fired.append((site, index, spec.mode))
            if spec.mode == "raise":
                raise InjectedFaultError(
                    f"injected fault at {site} call #{index}"
                )
            if spec.mode == "delay":
                time.sleep(spec.delay_ms / 1000.0)
            elif spec.mode == "crash":
                import os

                os._exit(CRASH_EXIT_CODE)
            else:  # corrupt
                corrupt = True
        return corrupt


def validate_score(value: float, site: str) -> float:
    """The *detect* half of corrupt-then-detect: scores must be finite
    and in [0, 1].

    Raises:
        DataCorruptionError: for NaN / infinite / out-of-range values.
    """
    if not math.isfinite(value) or not (0.0 <= value <= 1.0):
        raise DataCorruptionError(
            f"corrupted score {value!r} detected at {site}"
        )
    return value


class FaultyGraph:
    """Adjacency proxy routing neighbor access through fault points.

    ``"corrupt"`` mode splices an out-of-graph ``(node, edge)`` pair into
    the adjacency list; the proxy's validation detects it and raises
    :class:`~repro.errors.DataCorruptionError` (simulating a checksum
    mismatch on a storage page).  All other attributes delegate to the
    wrapped graph.
    """

    def __init__(self, graph, injector: FaultInjector) -> None:
        self._graph = graph
        self._injector = injector

    def _adjacency(self, site: str, entries):
        if self._injector.enter(site):
            entries = list(entries) + [(-1, -1)]
        for node_id, _eid in entries:
            if node_id not in self._graph:
                raise DataCorruptionError(
                    f"corrupted adjacency entry {node_id} detected at {site}"
                )
        return entries

    def neighbors(self, node_id: int):
        return self._adjacency(
            "graph.neighbors", self._graph.neighbors(node_id)
        )

    def out_neighbors(self, node_id: int):
        return self._adjacency(
            "graph.out_neighbors", self._graph.out_neighbors(node_id)
        )

    def in_neighbors(self, node_id: int):
        return self._adjacency(
            "graph.in_neighbors", self._graph.in_neighbors(node_id)
        )

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._graph

    def __len__(self) -> int:
        return len(self._graph)

    def __getattr__(self, name: str):
        return getattr(self._graph, name)


class FaultyScorer:
    """Scoring proxy with fault points around ``F_N`` / ``F_E``.

    Exposes a :class:`FaultyGraph` as ``.graph`` so engines built over
    this scorer exercise the adjacency fault points too.  All other
    attributes delegate to the wrapped scorer.
    """

    def __init__(self, scorer, injector: FaultInjector) -> None:
        self._scorer = scorer
        self._injector = injector
        self.graph = FaultyGraph(scorer.graph, injector)

    def node_score(self, query, node_id: int) -> float:
        corrupt = self._injector.enter("scorer.node_score")
        score = self._scorer.node_score(query, node_id)
        if corrupt:
            score = float("nan")
        return validate_score(score, "scorer.node_score")

    def relation_score(self, query, relation: str) -> float:
        corrupt = self._injector.enter("scorer.relation_score")
        score = self._scorer.relation_score(query, relation)
        if corrupt:
            score = float("nan")
        return validate_score(score, "scorer.relation_score")

    def __getattr__(self, name: str):
        return getattr(self._scorer, name)


def faulty(
    scorer,
    specs: Optional[Sequence[FaultSpec]] = None,
    seed: Optional[int] = None,
    **seed_kwargs,
) -> FaultyScorer:
    """Wrap *scorer* (and its graph) with fault points.

    Pass either an explicit *specs* list or a *seed* for a deterministic
    random plan (extra keyword arguments go to
    :meth:`FaultInjector.from_seed`).
    """
    if specs is not None and seed is not None:
        raise SearchError("pass either specs or seed, not both")
    if specs is None and seed is None:
        raise SearchError("pass a specs list or a seed")
    injector = (
        FaultInjector(specs) if specs is not None
        else FaultInjector.from_seed(seed, **seed_kwargs)
    )
    return FaultyScorer(scorer, injector)
