"""SLO classes and budget derivation for the serving layer.

The serving story of this repository rests on the paper's anytime
property: a STAR-family search can stop at any budget and return a
*flagged* best-so-far top-k.  An :class:`SLOClass` turns that primitive
into a service contract -- each priority class carries a response-time
target and work caps, and :func:`derive_budget_spec` maps (class,
degrade level) to :class:`~repro.runtime.budget.Budget` constructor
kwargs.  As admission pressure rises the serving layer raises the
degrade level, which *monotonically shrinks* the derived deadline and
node budget and forces anytime mode -- results degrade before requests
are rejected (degrade-before-shed).

The monotonicity contract (tested by ``tests/test_runtime_budget.py``):
for a fixed class, level L+1 never derives a larger deadline or node
budget than level L, and every level >= 1 is anytime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import SearchError

#: Degrade levels the admission layer may request; level 0 is "serve at
#: full SLO budget", each further level halves the budgets.
MAX_DEGRADE_LEVEL = 3

#: Per-level budget shrink factor (level L scales budgets by FACTOR**L).
DEGRADE_FACTOR = 0.5


@dataclass(frozen=True)
class SLOClass:
    """One priority class of the serving layer.

    Args:
        name: wire name of the class (``priority`` field of a request).
        rank: 0 = highest priority.  Ranks order queue wakeups, shift
            degrade watermarks (lower classes degrade earlier) and
            select shed victims (higher ranks shed first).
        deadline_ms: response-time SLO; becomes the level-0 budget
            deadline and the per-class latency gate in the chaos
            harness.
        max_nodes: level-0 cap on candidate node visits.
        max_retries: substrate-fault retries the scheduler may spend.
        hedge_ms: when set, the scheduler fires a duplicate (hedged)
            attempt after this many milliseconds without a response --
            reserved for the highest class.
    """

    name: str
    rank: int
    deadline_ms: float
    max_nodes: Optional[int] = None
    max_retries: int = 1
    hedge_ms: Optional[float] = None


#: Default serving classes: interactive gold, standard silver, batch
#: bronze.  Deadlines are generous against the test graphs (queries run
#: in milliseconds) so degraded results come from *pressure*, not from
#: an impossible baseline.
SLO_CLASSES: Dict[str, SLOClass] = {
    "gold": SLOClass("gold", rank=0, deadline_ms=2000.0, max_nodes=200_000,
                     max_retries=2, hedge_ms=150.0),
    "silver": SLOClass("silver", rank=1, deadline_ms=1000.0,
                       max_nodes=100_000, max_retries=1),
    "bronze": SLOClass("bronze", rank=2, deadline_ms=500.0,
                       max_nodes=50_000, max_retries=0),
}

#: Request execution modes: ``exact`` wants the unbudgeted answer (still
#: deadline-bounded, strict); ``anytime`` accepts flagged best-so-far.
MODES = ("anytime", "exact")


def resolve_slo(name: str,
                classes: Optional[Dict[str, SLOClass]] = None) -> SLOClass:
    """Look up a priority class by wire name.

    Raises:
        SearchError: for an unknown class name.
    """
    table = classes if classes is not None else SLO_CLASSES
    slo = table.get(name)
    if slo is None:
        raise SearchError(
            f"unknown priority class {name!r}; choose from "
            f"{sorted(table)}"
        )
    return slo


def derive_budget_spec(
    slo: SLOClass,
    degrade_level: int = 0,
    mode: str = "anytime",
    deadline_override_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Budget constructor kwargs for one admitted request.

    * Level 0, ``exact`` mode: a strict deadline-only budget -- the
      caller asked for the exact answer and would rather see an error
      than a silent prefix.
    * Everything else: an anytime budget whose deadline and node cap
      shrink geometrically with the degrade level.  ``exact`` requests
      are *downgraded to anytime* from level 1 on: under pressure the
      service answers with a flagged prefix instead of queueing for the
      full answer.

    The returned dict is picklable and crosses the process boundary to
    pool workers, which instantiate the :class:`Budget` locally.

    Raises:
        SearchError: for an unknown mode or out-of-range level.
    """
    if mode not in MODES:
        raise SearchError(f"unknown mode {mode!r}; choose from {MODES}")
    if degrade_level < 0:
        raise SearchError(f"degrade_level must be >= 0, got {degrade_level}")
    level = min(degrade_level, MAX_DEGRADE_LEVEL)
    # Overrides tighten only: the class deadline stays the ceiling, so
    # a client cannot buy itself a bigger budget (and a bigger scheduler
    # backstop) than its priority class grants.
    deadline = slo.deadline_ms
    if deadline_override_ms is not None:
        deadline = min(deadline_override_ms, slo.deadline_ms)
    if mode == "exact" and level == 0:
        return {"deadline_ms": deadline, "anytime": False}
    scale = DEGRADE_FACTOR ** level
    spec: Dict[str, Any] = {
        "deadline_ms": deadline * scale,
        "anytime": True,
    }
    if slo.max_nodes is not None:
        spec["max_nodes"] = max(1, int(slo.max_nodes * scale))
    return spec
