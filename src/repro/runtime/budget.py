"""Cooperative budgets and anytime search reports.

Production serving of top-k graph search needs *bounded* work: an
adversarial query, a slow scoring measure, or a faulty substrate must not
stall the engine (see Wang et al., "Semantic Guided and Response Times
Bounded Top-k Similarity Search over Knowledge Graphs", for the
response-time-bounded contract this mirrors; the paper's own Proposition 3
and d-bounded propagation already motivate bounded access internally).

The contract:

* A :class:`Budget` carries a wall-clock deadline plus work-unit caps
  (node visits, propagated messages, join steps).  One instance covers one
  search run; engines *charge* work at cooperative checkpoints.
* A charge that pushes a counter past its cap, or finds the deadline
  passed, **trips** the budget.  In strict mode (``anytime=False``) the
  charge raises :class:`~repro.errors.SearchTimeoutError` /
  :class:`~repro.errors.BudgetExceededError`; in anytime mode it returns
  True and the engine winds down, returning its best-so-far matches.
* A :class:`SearchReport` summarizes how the run ended: ``completed``
  (False when a budget tripped or a substrate fault was recorded --
  degraded results are flagged, never silently wrong), the termination
  reason, counters and elapsed time.

Engines treat ``budget=None`` as "unlimited": every checkpoint is a single
``is not None`` test, so unbudgeted searches keep the seed's exact
behavior and cost (verified by ``benchmarks/bench_runtime_budget.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import BudgetExceededError, SearchError, SearchTimeoutError

#: Termination reasons a tripped budget / SearchReport may carry.
REASON_DEADLINE = "deadline"
REASON_NODES = "node_budget"
REASON_MESSAGES = "message_budget"
REASON_JOIN_STEPS = "join_budget"
REASON_FAULT = "fault"


class Budget:
    """Cooperative budget: wall-clock deadline plus work counters.

    Args:
        deadline_ms: wall-clock limit in milliseconds (0 trips at the very
            first checkpoint -- useful for testing the wind-down path).
        max_nodes: cap on node visits (candidate scorings + pivot
            evaluations + backtracking steps, depending on the engine).
        max_messages: cap on propagated messages / pairwise evaluations.
        max_join_steps: cap on rank-join combination attempts.
        anytime: False (strict) makes a tripping charge raise; True makes
            it return True so engines can return best-so-far results.
        clock: monotonic time source (injectable for tests).

    A tripped budget is *sticky*: every later charge reports exhaustion,
    so a budget must not be reused across runs without :meth:`start`.
    Under an anytime budget, engines also route recoverable substrate
    failures here via :meth:`record_fault`.
    """

    __slots__ = (
        "deadline_ms", "max_nodes", "max_messages", "max_join_steps",
        "anytime", "_clock", "_started_at", "_deadline_at",
        "nodes_visited", "messages_sent", "join_steps", "faults",
        "exceeded_reason",
    )

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        max_nodes: Optional[int] = None,
        max_messages: Optional[int] = None,
        max_join_steps: Optional[int] = None,
        anytime: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        for name, value in (
            ("deadline_ms", deadline_ms),
            ("max_nodes", max_nodes),
            ("max_messages", max_messages),
            ("max_join_steps", max_join_steps),
        ):
            if value is not None and value < 0:
                raise SearchError(f"{name} must be >= 0, got {value}")
        self.deadline_ms = deadline_ms
        self.max_nodes = max_nodes
        self.max_messages = max_messages
        self.max_join_steps = max_join_steps
        self.anytime = anytime
        self._clock = clock
        self.start()

    # ------------------------------------------------------------------
    def start(self) -> "Budget":
        """(Re)arm the budget: reset counters, faults and the deadline."""
        self.nodes_visited = 0
        self.messages_sent = 0
        self.join_steps = 0
        self.faults: List[str] = []
        self.exceeded_reason: Optional[str] = None
        self._started_at = self._clock()
        self._deadline_at = (
            self._started_at + self.deadline_ms / 1000.0
            if self.deadline_ms is not None else None
        )
        return self

    @property
    def elapsed_ms(self) -> float:
        return (self._clock() - self._started_at) * 1000.0

    @property
    def exhausted(self) -> bool:
        """True once any limit has tripped."""
        return self.exceeded_reason is not None

    def record_fault(self, description: str) -> None:
        """Log a recovered substrate failure (anytime degradation)."""
        self.faults.append(description)

    # ------------------------------------------------------------------
    def _trip(self, reason: str, timeout: bool) -> bool:
        self.exceeded_reason = reason
        if not self.anytime:
            exc_cls = SearchTimeoutError if timeout else BudgetExceededError
            raise exc_cls(
                f"search budget exceeded ({reason}): "
                f"nodes={self.nodes_visited} messages={self.messages_sent} "
                f"join_steps={self.join_steps} "
                f"elapsed={self.elapsed_ms:.1f}ms"
            )
        return True

    def check(self) -> bool:
        """General checkpoint: sticky-exhausted or past the deadline."""
        if self.exceeded_reason is not None:
            return True
        if self._deadline_at is not None and self._clock() >= self._deadline_at:
            return self._trip(REASON_DEADLINE, timeout=True)
        return False

    def out_of_time(self) -> bool:
        """Deadline-only checkpoint for wind-down phases.

        Unlike :meth:`check` this ignores counter trips, so an engine that
        already tripped a work cap can still drain cheap, precomputed
        state (e.g. emit matches sitting in a heap) until time truly runs
        out.
        """
        if self.exceeded_reason == REASON_DEADLINE:
            return True
        if self._deadline_at is not None and self._clock() >= self._deadline_at:
            return self._trip(REASON_DEADLINE, timeout=True)
        return False

    def charge_nodes(self, n: int = 1) -> bool:
        """Charge *n* node visits; True when the budget has tripped."""
        if self.exceeded_reason is not None:
            return True
        self.nodes_visited += n
        if self.max_nodes is not None and self.nodes_visited > self.max_nodes:
            return self._trip(REASON_NODES, timeout=False)
        return self.check()

    def charge_messages(self, n: int = 1) -> bool:
        """Charge *n* propagated messages; True when tripped."""
        if self.exceeded_reason is not None:
            return True
        self.messages_sent += n
        if self.max_messages is not None and self.messages_sent > self.max_messages:
            return self._trip(REASON_MESSAGES, timeout=False)
        return self.check()

    def charge_join_steps(self, n: int = 1) -> bool:
        """Charge *n* rank-join combination attempts; True when tripped."""
        if self.exceeded_reason is not None:
            return True
        self.join_steps += n
        if self.max_join_steps is not None and self.join_steps > self.max_join_steps:
            return self._trip(REASON_JOIN_STEPS, timeout=False)
        return self.check()

    def __repr__(self) -> str:
        return (
            f"Budget(deadline_ms={self.deadline_ms}, max_nodes={self.max_nodes}, "
            f"max_messages={self.max_messages}, "
            f"max_join_steps={self.max_join_steps}, anytime={self.anytime}, "
            f"exceeded={self.exceeded_reason!r})"
        )


@dataclass
class SearchReport:
    """What a search run did and how it ended.

    ``completed`` is True only for a run that neither tripped a budget nor
    recovered from a fault -- i.e. its results are exactly the unbudgeted
    engine's results.  Anything else is a flagged, best-so-far answer.
    """

    algorithm: str = ""
    completed: bool = True
    reason: Optional[str] = None
    elapsed_ms: float = 0.0
    nodes_visited: int = 0
    messages_sent: int = 0
    join_steps: int = 0
    matches_returned: int = 0
    faults: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when results are best-so-far rather than exact."""
        return not self.completed

    @classmethod
    def from_budget(
        cls, algorithm: str, budget: Optional[Budget], matches_returned: int
    ) -> "SearchReport":
        """Snapshot *budget* (None = trivially complete) into a report."""
        if budget is None:
            return cls(algorithm=algorithm, matches_returned=matches_returned)
        reason = budget.exceeded_reason
        if reason is None and budget.faults:
            reason = REASON_FAULT
        return cls(
            algorithm=algorithm,
            completed=reason is None,
            reason=reason,
            elapsed_ms=budget.elapsed_ms,
            nodes_visited=budget.nodes_visited,
            messages_sent=budget.messages_sent,
            join_steps=budget.join_steps,
            matches_returned=matches_returned,
            faults=list(budget.faults),
        )

    def summary(self) -> str:
        """One-line human-readable summary (CLI / logs)."""
        state = "completed" if self.completed else f"incomplete ({self.reason})"
        line = (
            f"{self.algorithm or 'search'} {state}: "
            f"{self.matches_returned} match(es) in {self.elapsed_ms:.1f} ms, "
            f"nodes={self.nodes_visited} messages={self.messages_sent} "
            f"join_steps={self.join_steps}"
        )
        if self.faults:
            line += f", faults={len(self.faults)}"
        return line
