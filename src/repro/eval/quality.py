"""Result-quality metrics: comparing a matcher's top-k against exact.

The paper defers effectiveness to [2] but asserts two qualitative facts
this module makes measurable: STAR's rank joins are *complete* while "for
cyclic queries ... [BP] does not guarantee the completeness".  Metrics
are computed against a reference result list (usually the brute-force
oracle or any exact matcher).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.matches import Match


@dataclass(frozen=True)
class QualityReport:
    """Quality of one result list vs a reference list.

    Attributes:
        k: evaluation depth.
        precision_at_k: |returned ∩ reference| / k (match identity by
            assignment).
        score_recall: sum(returned scores) / sum(reference scores) --
            1.0 when equally good matches were found, even if different
            ones (ties can be swapped freely).
        top1_exact: returned[0] has the reference's best score.
        missing: reference matches absent from the returned list.
    """

    k: int
    precision_at_k: float
    score_recall: float
    top1_exact: bool
    missing: int


def compare_results(
    returned: Sequence[Match],
    reference: Sequence[Match],
    k: int,
    tolerance: float = 1e-9,
) -> QualityReport:
    """Score *returned* against exact *reference* at depth *k*."""
    ret = list(returned)[:k]
    ref = list(reference)[:k]
    if not ref:
        # Nothing to find: perfect iff nothing was returned.
        perfect = not ret
        return QualityReport(
            k=k,
            precision_at_k=1.0 if perfect else 0.0,
            score_recall=1.0 if perfect else 0.0,
            top1_exact=perfect,
            missing=0,
        )
    ref_keys = {m.key() for m in ref}
    hits = sum(1 for m in ret if m.key() in ref_keys)
    ret_total = sum(m.score for m in ret)
    ref_total = sum(m.score for m in ref)
    top1 = bool(ret) and abs(ret[0].score - ref[0].score) <= tolerance
    return QualityReport(
        k=k,
        precision_at_k=hits / len(ref),
        score_recall=min(1.0, ret_total / ref_total) if ref_total else 1.0,
        top1_exact=top1,
        missing=len(ref_keys) - hits,
    )


@dataclass
class AggregateQuality:
    """Quality aggregated over a workload."""

    reports: List[QualityReport]

    @property
    def avg_precision(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.precision_at_k for r in self.reports) / len(self.reports)

    @property
    def avg_score_recall(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.score_recall for r in self.reports) / len(self.reports)

    @property
    def top1_rate(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.top1_exact for r in self.reports) / len(self.reports)
