"""Benchmark dataset instances (cached per process).

The benchmark suite's equivalents of the paper's three datasets, at
Python-tractable scale (see DESIGN.md Section 2 for why the substitution
preserves the evaluation's shape).  Scales are chosen so the full
benchmark suite completes in minutes while keeping the relative density /
heterogeneity proportions of Table I.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import DatasetError
from repro.graph import KnowledgeGraph, dbpedia_like, freebase_like, yago2_like
from repro.similarity import ScoringConfig, ScoringFunction

#: Benchmark scales: tuned for minutes-long total suite runtime.
BENCHMARK_SCALES: Dict[str, float] = {
    "dbpedia": 0.35,
    "yago2": 0.6,
    "freebase": 0.8,
}

_GRAPHS: Dict[Tuple[str, float], KnowledgeGraph] = {}
_SCORERS: Dict[int, ScoringFunction] = {}


def benchmark_graph(name: str, scale: float = 0.0) -> KnowledgeGraph:
    """A cached benchmark graph: ``dbpedia`` / ``yago2`` / ``freebase``.

    Args:
        scale: override the default benchmark scale (0.0 = default).

    Raises:
        DatasetError: for unknown dataset names.
    """
    if name not in BENCHMARK_SCALES:
        raise DatasetError(
            f"unknown benchmark dataset {name!r}; "
            f"choose from {sorted(BENCHMARK_SCALES)}"
        )
    actual = scale or BENCHMARK_SCALES[name]
    key = (name, actual)
    if key not in _GRAPHS:
        factory = {
            "dbpedia": dbpedia_like,
            "yago2": yago2_like,
            "freebase": freebase_like,
        }[name]
        _GRAPHS[key] = factory(scale=actual)
    return _GRAPHS[key]


def benchmark_scorer(graph: KnowledgeGraph, fast: bool = True) -> ScoringFunction:
    """A cached scorer for *graph* (fast measure subset by default).

    Benchmarks compare *search* algorithms; the fast scoring mode keeps
    the shared online-scoring cost from dominating the runtimes while
    preserving rankings (see ``FAST_NODE_FUNCTION_NAMES``).
    """
    key = (id(graph), fast)
    if key not in _SCORERS:
        _SCORERS[key] = ScoringFunction(graph, ScoringConfig(fast=fast))
    return _SCORERS[key]


def clear_dataset_cache() -> None:
    """Drop all cached graphs/scorers (tests use this for isolation)."""
    _GRAPHS.clear()
    _SCORERS.clear()
