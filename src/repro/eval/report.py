"""Plain-text report formatting for the benchmark suite.

Every benchmark prints the paper artifact it regenerates as an aligned
ASCII table (the "same rows/series the paper reports") and also appends
it to ``benchmarks/results/`` so ``bench_output.txt`` plus the results
directory together document a full run.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results")


def format_ms(seconds_or_ms: float, is_seconds: bool = False) -> str:
    """Human-friendly milliseconds string."""
    ms = seconds_or_ms * 1000.0 if is_seconds else seconds_or_ms
    if ms >= 1000:
        return f"{ms / 1000:.2f}s"
    if ms >= 10:
        return f"{ms:.0f}ms"
    return f"{ms:.1f}ms"


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    save_as: Optional[str] = None,
) -> str:
    """Print (and optionally persist) a report table; returns the text."""
    text = render_table(title, headers, rows)
    print("\n" + text + "\n")
    if save_as:
        save_report(save_as, text)
    return text


def print_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Sequence[tuple],
    save_as: Optional[str] = None,
) -> str:
    """Print a figure-style series table: one column per x value.

    Args:
        series: ``[(name, [value per x]), ...]``.
    """
    headers = [x_label] + [str(x) for x in xs]
    rows = [[name] + [str(v) for v in values] for name, values in series]
    return print_table(title, headers, rows, save_as=save_as)


def save_report(name: str, text: str) -> str:
    """Append a report block to ``benchmarks/results/<name>.txt``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(text + "\n\n")
    return path
