"""Evaluation harness: datasets, timing runners, and report formatting
used by the ``benchmarks/`` suite to regenerate every table and figure."""

from repro.eval.datasets import benchmark_graph, benchmark_scorer, clear_dataset_cache
from repro.eval.harness import (
    AlgorithmResult,
    disjoint_edge_stream,
    make_matcher,
    run_general_workload,
    run_star_workload,
    time_algorithm,
)
from repro.eval.charts import ascii_chart
from repro.eval.quality import AggregateQuality, QualityReport, compare_results
from repro.eval.report import format_ms, print_series, print_table, save_report

__all__ = [
    "AggregateQuality",
    "ascii_chart",
    "AlgorithmResult",
    "benchmark_graph",
    "benchmark_scorer",
    "clear_dataset_cache",
    "disjoint_edge_stream",
    "format_ms",
    "make_matcher",
    "QualityReport",
    "compare_results",
    "print_series",
    "print_table",
    "run_general_workload",
    "run_star_workload",
    "save_report",
    "time_algorithm",
]
