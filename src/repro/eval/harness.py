"""Timing harness: run algorithm x workload grids with fair cold caches.

Section VII's protocol: end-to-end query processing time, averaged over
cold runs.  Fairness here means every algorithm sees the same graph, the
same scoring function and the same candidate definitions, and pays the
online scoring cost itself: the shared scorer's memo cache is cleared
before each (algorithm, query) measurement.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import BeliefPropagation, GraphTA
from repro.core import HybridStarSearch, Star, StarDSearch, StarKSearch
from repro.errors import BudgetExceededError, SearchError
from repro.query.model import Query, StarQuery
from repro.runtime.budget import Budget
from repro.similarity.scoring import ScoringFunction

#: Matcher names accepted by :func:`make_matcher`.
ALGORITHMS = ("stark", "stard", "graphta", "bp", "hybrid")


@dataclass
class AlgorithmResult:
    """Aggregated measurements of one algorithm over one workload."""

    algorithm: str
    runtimes: List[float] = field(default_factory=list)
    matches_found: int = 0
    empty_queries: int = 0
    budget_exceeded: int = 0
    faults_recorded: int = 0

    @property
    def total_s(self) -> float:
        return sum(self.runtimes)

    @property
    def avg_ms(self) -> float:
        return 1000.0 * self.total_s / len(self.runtimes) if self.runtimes else 0.0

    @property
    def p50_ms(self) -> float:
        return 1000.0 * statistics.median(self.runtimes) if self.runtimes else 0.0


def make_matcher(
    name: str,
    scorer: ScoringFunction,
    d: int = 1,
    candidate_limit: Optional[int] = None,
) -> Callable[[Query, int], list]:
    """Build a ``search(query, k)`` callable for the named algorithm.

    ``stark``/``stard``/``hybrid`` accept star-shaped queries (converted
    internally); ``graphta``/``bp`` take general queries directly.

    Raises:
        SearchError: for unknown algorithm names.
    """
    name = name.lower()
    if name == "stark":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            matcher = StarKSearch(scorer, d=d, candidate_limit=candidate_limit)
            return matcher.search(StarQuery.from_query(query), k, budget=budget)
        return run
    if name == "stard":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            matcher = StarDSearch(scorer, d=d, candidate_limit=candidate_limit)
            return matcher.search(StarQuery.from_query(query), k, budget=budget)
        return run
    if name == "hybrid":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            matcher = HybridStarSearch(
                scorer, d=d, candidate_limit=candidate_limit
            )
            return matcher.search(StarQuery.from_query(query), k, budget=budget)
        return run
    if name == "graphta":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            return GraphTA(
                scorer, d=d, candidate_limit=candidate_limit
            ).search(query, k, budget=budget)
        return run
    if name == "bp":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            return BeliefPropagation(
                scorer, d=d, candidate_limit=candidate_limit
            ).search(query, k, budget=budget)
        return run
    raise SearchError(f"unknown algorithm {name!r}; choose from {ALGORITHMS}")


def time_algorithm(
    name: str,
    scorer: ScoringFunction,
    workload: Sequence[Query],
    k: int,
    d: int = 1,
    candidate_limit: Optional[int] = None,
    cold: bool = True,
    deadline_ms: Optional[float] = None,
    max_nodes: Optional[int] = None,
    anytime: bool = True,
) -> AlgorithmResult:
    """Measure one algorithm over a workload (cold scorer cache per query).

    A per-query :class:`Budget` is applied when *deadline_ms* or
    *max_nodes* is set.  In anytime mode (default) a budgeted query
    contributes its flagged best-so-far matches and bumps
    ``budget_exceeded``; in strict mode a trip counts the query as empty.
    """
    run = make_matcher(name, scorer, d=d, candidate_limit=candidate_limit)
    result = AlgorithmResult(algorithm=name)
    budgeted = deadline_ms is not None or max_nodes is not None
    for query in workload:
        if cold:
            scorer.clear_cache()
        budget = (
            Budget(deadline_ms=deadline_ms, max_nodes=max_nodes,
                   anytime=anytime)
            if budgeted else None
        )
        start = time.perf_counter()
        try:
            matches = run(query, k, budget=budget)
        except BudgetExceededError:
            matches = []
        result.runtimes.append(time.perf_counter() - start)
        result.matches_found += len(matches)
        if not matches:
            result.empty_queries += 1
        if budget is not None:
            if budget.exceeded_reason is not None:
                result.budget_exceeded += 1
            result.faults_recorded += len(budget.faults)
    return result


def run_star_workload(
    scorer: ScoringFunction,
    workload: Sequence[Query],
    algorithms: Sequence[str],
    k: int,
    d: int = 1,
    candidate_limit: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_nodes: Optional[int] = None,
    anytime: bool = True,
) -> Dict[str, AlgorithmResult]:
    """Measure several algorithms over a star-query workload."""
    return {
        name: time_algorithm(
            name, scorer, workload, k, d=d, candidate_limit=candidate_limit,
            deadline_ms=deadline_ms, max_nodes=max_nodes, anytime=anytime,
        )
        for name in algorithms
    }


def run_general_workload(
    scorer: ScoringFunction,
    workload: Sequence[Query],
    k: int,
    d: int = 1,
    alpha: float = 0.5,
    method: str = "simdec",
    lam: float = 1.0,
    candidate_limit: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_nodes: Optional[int] = None,
    anytime: bool = True,
) -> "JoinRunResult":
    """Measure the STAR framework on general queries; tracks join depth."""
    runtimes: List[float] = []
    depths: List[int] = []
    matches_found = 0
    budget_exceeded = 0
    budgeted = deadline_ms is not None or max_nodes is not None
    for query in workload:
        scorer.clear_cache()
        engine = Star(
            scorer.graph, scorer=scorer, d=d, alpha=alpha,
            decomposition_method=method, lam=lam,
            candidate_limit=candidate_limit,
        )
        budget = (
            Budget(deadline_ms=deadline_ms, max_nodes=max_nodes,
                   anytime=anytime)
            if budgeted else None
        )
        start = time.perf_counter()
        try:
            matches = engine.search(query, k, budget=budget)
        except BudgetExceededError:
            matches = []
        runtimes.append(time.perf_counter() - start)
        matches_found += len(matches)
        depths.append(engine.total_depth or 0)
        if budget is not None and budget.exceeded_reason is not None:
            budget_exceeded += 1
    return JoinRunResult(
        method, alpha, runtimes, depths, matches_found, budget_exceeded
    )


@dataclass
class JoinRunResult:
    """Measurements of one starjoin configuration over a workload."""

    method: str
    alpha: float
    runtimes: List[float]
    depths: List[int]
    matches_found: int
    budget_exceeded: int = 0

    @property
    def avg_ms(self) -> float:
        return 1000.0 * sum(self.runtimes) / len(self.runtimes) if self.runtimes else 0.0

    @property
    def avg_depth(self) -> float:
        return sum(self.depths) / len(self.depths) if self.depths else 0.0

    @property
    def depth_std(self) -> float:
        return statistics.pstdev(self.depths) if len(self.depths) > 1 else 0.0
