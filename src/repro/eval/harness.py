"""Timing harness: run algorithm x workload grids with fair cold caches.

Section VII's protocol: end-to-end query processing time, averaged over
cold runs.  Fairness here means every algorithm sees the same graph, the
same scoring function and the same candidate definitions, and pays the
online scoring cost itself: the shared scorer's memo cache is cleared
before each (algorithm, query) measurement.

``workers > 1`` fans the workload over a fork-based process pool (each
child inherits the graph and scorer through copy-on-write and measures
its share of queries with the identical per-query protocol); per-query
measurements are merged back in workload order.  Requires the ``fork``
start method -- elsewhere the harness falls back to serial execution,
because thread-pool timing under the GIL would not measure what the
serial protocol measures.
"""

from __future__ import annotations

import multiprocessing
import os
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.baselines import BeliefPropagation, GraphTA
from repro.core import HybridStarSearch, Star, StarDSearch, StarKSearch
from repro.errors import BudgetExceededError, SearchError
from repro.query.model import Query, StarQuery
from repro.runtime.budget import Budget
from repro.similarity.scoring import ScoringFunction

#: Matcher names accepted by :func:`make_matcher`.
ALGORITHMS = ("stark", "stard", "graphta", "bp", "hybrid")


@dataclass
class AlgorithmResult:
    """Aggregated measurements of one algorithm over one workload."""

    algorithm: str
    runtimes: List[float] = field(default_factory=list)
    matches_found: int = 0
    empty_queries: int = 0
    budget_exceeded: int = 0
    faults_recorded: int = 0
    #: :meth:`repro.obs.MetricsRegistry.as_dict` snapshot covering the
    #: run, when observability was enabled around the call; else None.
    metrics: Optional[Dict[str, dict]] = None

    @property
    def total_s(self) -> float:
        return sum(self.runtimes)

    @property
    def avg_ms(self) -> float:
        return 1000.0 * self.total_s / len(self.runtimes) if self.runtimes else 0.0

    @property
    def p50_ms(self) -> float:
        return 1000.0 * statistics.median(self.runtimes) if self.runtimes else 0.0


def make_matcher(
    name: str,
    scorer: ScoringFunction,
    d: int = 1,
    candidate_limit: Optional[int] = None,
) -> Callable[[Query, int], list]:
    """Build a ``search(query, k)`` callable for the named algorithm.

    ``stark``/``stard``/``hybrid`` accept star-shaped queries (converted
    internally); ``graphta``/``bp`` take general queries directly.

    Raises:
        SearchError: for unknown algorithm names.
    """
    name = name.lower()
    if name == "stark":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            matcher = StarKSearch(scorer, d=d, candidate_limit=candidate_limit)
            return matcher.search(StarQuery.from_query(query), k, budget=budget)
        return run
    if name == "stard":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            matcher = StarDSearch(scorer, d=d, candidate_limit=candidate_limit)
            return matcher.search(StarQuery.from_query(query), k, budget=budget)
        return run
    if name == "hybrid":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            matcher = HybridStarSearch(
                scorer, d=d, candidate_limit=candidate_limit
            )
            return matcher.search(StarQuery.from_query(query), k, budget=budget)
        return run
    if name == "graphta":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            return GraphTA(
                scorer, d=d, candidate_limit=candidate_limit
            ).search(query, k, budget=budget)
        return run
    if name == "bp":
        def run(query: Query, k: int, budget: Optional[Budget] = None) -> list:
            return BeliefPropagation(
                scorer, d=d, candidate_limit=candidate_limit
            ).search(query, k, budget=budget)
        return run
    raise SearchError(f"unknown algorithm {name!r}; choose from {ALGORITHMS}")


#: Per-query measurement: (elapsed_s, matches, budget_exceeded, faults).
_Measurement = Tuple[float, int, int, int]

#: Copy-on-write context for fork workers (populated before the fork).
_HARNESS_CTX: dict = {}


def _measure_query(
    run: Callable,
    scorer: ScoringFunction,
    query: Query,
    k: int,
    cold: bool,
    deadline_ms: Optional[float],
    max_nodes: Optional[int],
    anytime: bool,
) -> _Measurement:
    """One (algorithm, query) measurement under the serial protocol."""
    if cold:
        scorer.clear_cache()
    budgeted = deadline_ms is not None or max_nodes is not None
    budget = (
        Budget(deadline_ms=deadline_ms, max_nodes=max_nodes, anytime=anytime)
        if budgeted else None
    )
    start = time.perf_counter()
    try:
        matches = run(query, k, budget=budget)
    except BudgetExceededError:
        matches = []
    elapsed = time.perf_counter() - start
    exceeded = int(budget is not None and budget.exceeded_reason is not None)
    faults = len(budget.faults) if budget is not None else 0
    return elapsed, len(matches), exceeded, faults


def _init_harness_worker() -> None:
    """Reset the tracer a fork worker inherited, for per-run snapshots."""
    tracer = obs.active_tracer()
    if tracer is not None:
        tracer.reset()


def _harness_fork_task(index: int):
    """Measure one query in a fork worker (context inherited pre-fork).

    Returns the measurement plus this worker's (pid, cumulative obs
    registry snapshot) so the parent can merge metrics exactly.
    """
    ctx = _HARNESS_CTX
    run = make_matcher(
        ctx["name"], ctx["scorer"], d=ctx["d"],
        candidate_limit=ctx["candidate_limit"],
    )
    measurement = _measure_query(
        run, ctx["scorer"], ctx["workload"][index], ctx["k"], ctx["cold"],
        ctx["deadline_ms"], ctx["max_nodes"], ctx["anytime"],
    )
    return measurement, os.getpid(), obs.snapshot(include_samples=True)


def time_algorithm(
    name: str,
    scorer: ScoringFunction,
    workload: Sequence[Query],
    k: int,
    d: int = 1,
    candidate_limit: Optional[int] = None,
    cold: bool = True,
    deadline_ms: Optional[float] = None,
    max_nodes: Optional[int] = None,
    anytime: bool = True,
    workers: int = 1,
) -> AlgorithmResult:
    """Measure one algorithm over a workload (cold scorer cache per query).

    A per-query :class:`Budget` is applied when *deadline_ms* or
    *max_nodes* is set.  In anytime mode (default) a budgeted query
    contributes its flagged best-so-far matches and bumps
    ``budget_exceeded``; in strict mode a trip counts the query as empty.

    With ``workers > 1`` the per-query measurements run in a fork-based
    process pool (serial fallback when forking is unavailable).  Each
    child inherits the graph/scorer copy-on-write and applies the exact
    per-query protocol above, so counts are identical to a serial run;
    only wall-clock interleaving differs.
    """
    if workers < 1:
        raise SearchError(f"workers must be >= 1, got {workers}")
    run = make_matcher(name, scorer, d=d, candidate_limit=candidate_limit)
    result = AlgorithmResult(algorithm=name)

    measurements: List[_Measurement]
    use_fork = (
        workers > 1 and len(workload) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if use_fork:
        _HARNESS_CTX.update(
            name=name, scorer=scorer, workload=list(workload), k=k, d=d,
            candidate_limit=candidate_limit, cold=cold,
            deadline_ms=deadline_ms, max_nodes=max_nodes, anytime=anytime,
        )
        ctx = multiprocessing.get_context("fork")
        try:
            with ctx.Pool(min(workers, len(workload)),
                          initializer=_init_harness_worker) as pool:
                rows = pool.map(
                    _harness_fork_task, range(len(workload)), chunksize=1
                )
        finally:
            _HARNESS_CTX.clear()
        measurements = [row[0] for row in rows]
        worker_snaps = {pid: snap for _m, pid, snap in rows}
        collected = [s for s in worker_snaps.values() if s is not None]
        if collected:
            merged = obs.MetricsRegistry.merged(collected)
            live = obs.registry()
            if live is not None:
                live.merge_snapshot(merged.as_dict(include_samples=True))
            result.metrics = merged.as_dict()
    else:
        measurements = [
            _measure_query(
                run, scorer, query, k, cold, deadline_ms, max_nodes, anytime
            )
            for query in workload
        ]
        result.metrics = obs.snapshot()

    for elapsed, n_matches, exceeded, faults in measurements:
        result.runtimes.append(elapsed)
        result.matches_found += n_matches
        if not n_matches:
            result.empty_queries += 1
        result.budget_exceeded += exceeded
        result.faults_recorded += faults
    return result


def disjoint_edge_stream(
    graph,
    count: int,
    avoid: frozenset = frozenset(),
    relation: str = "unrelated_to",
    seed: int = 0,
) -> List[list]:
    """Operation records for *count* cache-survivable edge inserts.

    Generates ``add_edge`` records (for
    :func:`repro.dynamic.apply_operations`) between live nodes outside
    *avoid*, choosing endpoints whose post-insert degree stays strictly
    below the graph's max degree -- so no insert moves the degree-prior
    normalizer and every mutation is one a fine-grained cache can
    provably survive.  This is the "N unrelated edge inserts" half of
    the warm-hit-rate retention experiment (EXPERIMENTS.md): apply the
    stream between two identical workload runs and compare hit rates.

    Returns fewer than *count* records when the graph has too few
    eligible low-degree node pairs.
    """
    import random

    rng = random.Random(seed)
    eligible = [v for v in graph.nodes() if v not in avoid]
    degrees = {v: graph.degree(v) for v in eligible}
    ceiling = graph.max_degree - 1  # post-insert degree must stay <= max
    records: List[list] = []
    attempts = 0
    max_attempts = max(50, count * 50)
    while len(records) < count and attempts < max_attempts:
        attempts += 1
        if len(eligible) < 2:
            break
        a, b = rng.sample(eligible, 2)
        if degrees[a] > ceiling - 1 or degrees[b] > ceiling - 1:
            continue
        records.append(["add_edge", a, b, relation, {}])
        degrees[a] += 1
        degrees[b] += 1
    return records


def run_star_workload(
    scorer: ScoringFunction,
    workload: Sequence[Query],
    algorithms: Sequence[str],
    k: int,
    d: int = 1,
    candidate_limit: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_nodes: Optional[int] = None,
    anytime: bool = True,
    workers: int = 1,
) -> Dict[str, AlgorithmResult]:
    """Measure several algorithms over a star-query workload."""
    return {
        name: time_algorithm(
            name, scorer, workload, k, d=d, candidate_limit=candidate_limit,
            deadline_ms=deadline_ms, max_nodes=max_nodes, anytime=anytime,
            workers=workers,
        )
        for name in algorithms
    }


def run_general_workload(
    scorer: ScoringFunction,
    workload: Sequence[Query],
    k: int,
    d: int = 1,
    alpha: float = 0.5,
    method: str = "simdec",
    lam: float = 1.0,
    candidate_limit: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_nodes: Optional[int] = None,
    anytime: bool = True,
) -> "JoinRunResult":
    """Measure the STAR framework on general queries; tracks join depth."""
    runtimes: List[float] = []
    depths: List[int] = []
    matches_found = 0
    budget_exceeded = 0
    budgeted = deadline_ms is not None or max_nodes is not None
    for query in workload:
        scorer.clear_cache()
        engine = Star(
            scorer.graph, scorer=scorer, d=d, alpha=alpha,
            decomposition_method=method, lam=lam,
            candidate_limit=candidate_limit,
        )
        budget = (
            Budget(deadline_ms=deadline_ms, max_nodes=max_nodes,
                   anytime=anytime)
            if budgeted else None
        )
        start = time.perf_counter()
        try:
            matches = engine.search(query, k, budget=budget)
        except BudgetExceededError:
            matches = []
        runtimes.append(time.perf_counter() - start)
        matches_found += len(matches)
        depths.append(engine.total_depth or 0)
        if budget is not None and budget.exceeded_reason is not None:
            budget_exceeded += 1
    return JoinRunResult(
        method, alpha, runtimes, depths, matches_found, budget_exceeded
    )


@dataclass
class JoinRunResult:
    """Measurements of one starjoin configuration over a workload."""

    method: str
    alpha: float
    runtimes: List[float]
    depths: List[int]
    matches_found: int
    budget_exceeded: int = 0

    @property
    def avg_ms(self) -> float:
        return 1000.0 * sum(self.runtimes) / len(self.runtimes) if self.runtimes else 0.0

    @property
    def avg_depth(self) -> float:
        return sum(self.depths) / len(self.depths) if self.depths else 0.0

    @property
    def depth_std(self) -> float:
        return statistics.pstdev(self.depths) if len(self.depths) > 1 else 0.0
