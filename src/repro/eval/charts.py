"""ASCII charts for benchmark series (the figures' terminal rendering).

The paper's figures are log-scale runtime curves; :func:`ascii_chart`
renders the same series as a terminal plot so ``bench_output.txt``
carries a visual shape check alongside the numeric tables.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

_MARKERS = "*o+x#@%&"


def ascii_chart(
    title: str,
    xs: Sequence[object],
    series: Sequence[Tuple[str, Sequence[float]]],
    height: int = 12,
    log_scale: bool = True,
    unit: str = "ms",
) -> str:
    """Render one or more y-series over shared x labels.

    Args:
        series: ``[(name, values), ...]``; values must be positive when
            *log_scale* is set (non-positive points are skipped).
        height: chart rows.
        log_scale: log10 y-axis (the paper's figures are log scale).
    """
    points: List[Tuple[int, int, int]] = []  # (series idx, x idx, row)
    values = [
        v for _name, vs in series for v in vs
        if v is not None and (not log_scale or v > 0)
    ]
    if not values or height < 2:
        return f"== {title} ==\n(no data)"

    def transform(v: float) -> float:
        return math.log10(v) if log_scale else v

    lo = min(transform(v) for v in values)
    hi = max(transform(v) for v in values)
    span = (hi - lo) or 1.0

    grid = [[" "] * len(xs) for _ in range(height)]
    for si, (_name, vs) in enumerate(series):
        marker = _MARKERS[si % len(_MARKERS)]
        for xi, v in enumerate(vs):
            if v is None or (log_scale and v <= 0):
                continue
            frac = (transform(v) - lo) / span
            row = height - 1 - int(round(frac * (height - 1)))
            grid[row][xi] = marker

    col_width = max(6, max(len(str(x)) for x in xs) + 1)
    lines = [f"== {title} =="]
    scale_note = "log10 " if log_scale else ""
    for row_idx, row in enumerate(grid):
        frac = 1.0 - row_idx / (height - 1)
        level = lo + frac * span
        value = 10 ** level if log_scale else level
        label = f"{value:9.1f}{unit} |"
        cells = "".join(cell.ljust(col_width) for cell in row)
        lines.append(label + cells)
    axis = " " * 11 + f"{'':1}+" + "-" * (col_width * len(xs))
    lines.append(axis)
    x_labels = " " * 13 + "".join(str(x).ljust(col_width) for x in xs)
    lines.append(x_labels)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, (name, _vs) in enumerate(series)
    )
    lines.append(f"  ({scale_note}scale)  {legend}")
    return "\n".join(lines)
