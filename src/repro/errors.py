"""Exception hierarchy for the STAR reproduction library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries.  Each subclass marks one family
of failures (graph construction, query validation, scoring, search).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Raised for malformed graph operations (unknown node ids, bad edges)."""


class QueryError(ReproError):
    """Raised for structurally invalid queries (empty, non-star pivot, ...)."""


class DecompositionError(QueryError):
    """Raised when a query cannot be decomposed into star subqueries."""


class ScoringError(ReproError):
    """Raised for invalid scoring configuration (bad weights, thresholds)."""


class SearchError(ReproError):
    """Raised when a search procedure is invoked with invalid parameters."""


class BudgetExceededError(SearchError):
    """A work budget (node visits, messages, join steps) tripped in strict
    mode (:class:`repro.runtime.Budget` with ``anytime=False``).

    Attributes:
        report: the :class:`repro.runtime.SearchReport` of the aborted run,
            attached by the engine that observed the trip (None when the
            trip happened outside any engine's search loop).
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class SearchTimeoutError(BudgetExceededError):
    """The wall-clock deadline passed in strict mode.

    Subclasses :class:`BudgetExceededError`, so catching the latter covers
    both counter and deadline trips.
    """


class InjectedFaultError(ReproError):
    """Raised by a fault point (:mod:`repro.runtime.faults`) in 'raise'
    mode -- the structured stand-in for a failing substrate call."""


class DataCorruptionError(ReproError):
    """A substrate returned a value that failed validation (the *detect*
    half of corrupt-then-detect fault injection)."""


class DatasetError(ReproError):
    """Raised when a benchmark dataset cannot be generated or loaded."""


class SnapshotCorruptionError(DataCorruptionError, DatasetError):
    """A persisted ``RKGS`` snapshot failed validation while loading.

    Subclasses both :class:`DataCorruptionError` (it *is* detected
    corruption -- circuit breakers and chaos harnesses treat it as a
    substrate fault) and :class:`DatasetError` (existing load-path
    callers catch that).  Decode failures always surface as this typed
    error, never a bare ``struct.error`` / ``zlib.error`` / ``IndexError``.

    Attributes:
        path: the snapshot file, when known.
        section: for ``RKGS2`` stores, the named section (or ``header``
            / ``directory``) where validation failed; None for RKGS v1.
        offset: byte offset into the *uncompressed body* (or the raw
            file, for header/envelope corruption) where decoding failed;
            None when no position is attributable.
    """

    def __init__(self, message: str, path=None, offset=None,
                 section=None) -> None:
        self.base_message = message
        context = []
        if path is not None:
            context.append(str(path))
        if section is not None:
            context.append(f"section {section!r}")
        if offset is not None:
            context.append(f"offset {offset}")
        if context:
            message = f"{message} ({', '.join(context)})"
        super().__init__(message)
        self.path = path
        self.section = section
        self.offset = offset


class OverloadedError(ReproError):
    """The serving layer refused a request (queue full, rate limited,
    or circuit breaker open).

    Attributes:
        retry_after_s: suggested client backoff in seconds (None when
            retrying is pointless, e.g. an authorization-style reject).
    """

    def __init__(self, message: str, retry_after_s=None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class WorkerCrashError(ReproError):
    """A pool worker process died while executing a request or batch
    share, and the work could not be (re)completed on a survivor."""
