"""Exception hierarchy for the STAR reproduction library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries.  Each subclass marks one family
of failures (graph construction, query validation, scoring, search).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Raised for malformed graph operations (unknown node ids, bad edges)."""


class QueryError(ReproError):
    """Raised for structurally invalid queries (empty, non-star pivot, ...)."""


class DecompositionError(QueryError):
    """Raised when a query cannot be decomposed into star subqueries."""


class ScoringError(ReproError):
    """Raised for invalid scoring configuration (bad weights, thresholds)."""


class SearchError(ReproError):
    """Raised when a search procedure is invoked with invalid parameters."""


class DatasetError(ReproError):
    """Raised when a benchmark dataset cannot be generated or loaded."""
