"""Metric primitives: counters, gauges, histograms, and their registry.

Small, dependency-free, and deterministic: metric values are plain
Python numbers, registries export to sorted plain dicts (JSON-safe), and
snapshots from parallel workers merge exactly (counters sum, gauges take
the max, histograms concatenate their retained samples and recompute the
percentiles).  Timing quantiles use the nearest-rank method on the
retained sample list, so two runs observing the same values report the
same p50/p95/p99 regardless of observation order.

These objects are *not* thread-safe in the strict sense: increments are
GIL-sized and may race under the thread backend (a lost increment, never
a crash).  The fork backend and serial execution are exact; the parity
suite relies on that.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Retained samples per histogram; beyond it, count/sum/min/max keep
#: accumulating but percentiles describe the first ``MAX_SAMPLES``
#: observations only (flagged by ``truncated`` in the export).
MAX_SAMPLES = 4096


class Counter:
    """A monotone event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A sampled distribution with p50/p95/p99 summaries.

    ``observe`` is O(1); percentiles sort the retained samples on demand
    (export-time only, never on the hot path).
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples",
                 "max_samples")

    def __init__(self, name: str, max_samples: int = MAX_SAMPLES) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self.max_samples:
            self.samples.append(value)

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile of the retained samples (p in [0, 100])."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without math
        return ordered[int(rank) - 1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self, include_samples: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
        if self.count > len(self.samples):
            out["truncated"] = True
        if include_samples:
            out["samples"] = list(self.samples)
        return out

    def merge_dict(self, data: Dict[str, object]) -> None:
        """Fold an exported snapshot (with samples) into this histogram."""
        self.count += int(data.get("count", 0))
        self.total += float(data.get("sum", 0.0))
        for bound, better in (("min", min), ("max", max)):
            other = data.get(bound)
            if other is None:
                continue
            mine = getattr(self, bound)
            setattr(self, bound,
                    other if mine is None else better(mine, other))
        room = self.max_samples - len(self.samples)
        if room > 0:
            self.samples.extend(list(data.get("samples", []))[:room])

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.3f})"


class MetricsRegistry:
    """Named metric store with get-or-create accessors and exact merging."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    # -- export / merge ------------------------------------------------
    def as_dict(self, include_samples: bool = False) -> Dict[str, dict]:
        """JSON-safe snapshot, keys sorted for deterministic output."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].value for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].as_dict(include_samples)
                for name in sorted(self.histograms)
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> "MetricsRegistry":
        """Fold an :meth:`as_dict` snapshot (ideally with samples) in."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, float(value)))
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_dict(data)
        return self

    @classmethod
    def merged(cls, snapshots: Iterable[Dict[str, dict]]) -> "MetricsRegistry":
        """A fresh registry holding the sum of *snapshots*."""
        registry = cls()
        for snapshot in snapshots:
            registry.merge_snapshot(snapshot)
        return registry

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def summary_lines(self) -> List[str]:
        """Human-readable one-line-per-metric rendering (sorted)."""
        lines = [
            f"counter   {name:<32s} {self.counters[name].value}"
            for name in sorted(self.counters)
        ]
        lines.extend(
            f"gauge     {name:<32s} {self.gauges[name].value:g}"
            for name in sorted(self.gauges)
        )
        for name in sorted(self.histograms):
            h = self.histograms[name]
            p50, p95, p99 = (h.percentile(p) for p in (50, 95, 99))
            lines.append(
                f"histogram {name:<32s} n={h.count} mean={h.mean:.3f} "
                f"p50={p50:.3f} p95={p95:.3f} p99={p99:.3f}"
                if h.count else
                f"histogram {name:<32s} n=0"
            )
        return lines

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self.counters)}, "
                f"gauges={len(self.gauges)}, "
                f"histograms={len(self.histograms)})")
