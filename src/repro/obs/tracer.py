"""Low-overhead span tracer: nested phase timing with wall + CPU clocks.

A :class:`Span` is a context manager recording wall time
(``time.perf_counter``) and CPU time (``time.process_time``) between
enter and exit.  Spans opened while another span is active nest under it,
building per-query phase trees like::

    stark.search                      wall 12.41 ms  cpu 12.02 ms
      stark.candidates                wall  8.03 ms  cpu  7.88 ms
      stark.leaf_fetch                wall  1.95 ms  cpu  1.91 ms
      stark.pivot_search              wall  2.11 ms  cpu  2.05 ms

The span stack is *per thread* (a :class:`Tracer` may be shared by the
thread backend without corrupting nesting); finished root spans append to
the shared ``roots`` list.  Every finished span also feeds the
``span.<name>.ms`` histogram of the tracer's metric registry, so
p50/p95/p99 per phase come for free.

Generators must never hold a span open across a ``yield`` -- the
consumer's spans would nest under it incorrectly.  The engine
instrumentation only wraps code that runs to completion between yields.

Exports: :meth:`Tracer.to_dicts` (nested JSON), :meth:`Tracer.export_json`
(one document), :meth:`Tracer.export_jsonl` (one line per span, pre-order;
with ``include_timing=False`` the output is byte-deterministic for a
fixed seed/query -- the determinism suite asserts it) and
:meth:`Tracer.format_tree` (the ``repro trace`` rendering).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry


class Span:
    """One timed phase; a context manager bound to its tracer."""

    __slots__ = ("name", "attrs", "children", "wall_ms", "cpu_ms",
                 "_tracer", "_t0", "_c0")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[Dict[str, object]] = None) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs: Dict[str, object] = attrs or {}
        self.children: List["Span"] = []
        self.wall_ms: float = 0.0
        self.cpu_ms: float = 0.0
        self._t0 = 0.0
        self._c0 = 0.0

    def annotate(self, **attrs: object) -> "Span":
        """Attach (deterministic) key/value context to the span."""
        self.attrs.update(attrs)
        return self

    # -- context manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_ms = (time.perf_counter() - self._t0) * 1000.0
        self.cpu_ms = (time.process_time() - self._c0) * 1000.0
        self._tracer._pop(self)
        return False

    # -- export --------------------------------------------------------
    def to_dict(self, include_timing: bool = True) -> Dict[str, object]:
        out: Dict[str, object] = {"name": self.name}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if include_timing:
            out["wall_ms"] = round(self.wall_ms, 3)
            out["cpu_ms"] = round(self.cpu_ms, 3)
        if self.children:
            out["children"] = [
                child.to_dict(include_timing) for child in self.children
            ]
        return out

    def __repr__(self) -> str:
        return f"Span({self.name}, wall={self.wall_ms:.3f}ms)"


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: object) -> "_NoopSpan":
        return self


#: The singleton no-op span: ``obs.trace`` hands it out when disabled, so
#: the disabled cost of an instrumented block is one attribute load plus
#:  an identity test -- no allocation, no clock reads.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects span trees and metrics for one observation window."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry()
        self.roots: List[Span] = []
        self._local = threading.local()

    # -- span lifecycle (called by Span) -------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate exits out of order (a generator finalized late): unwind
        # to the span being closed instead of corrupting the tree.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self.registry.histogram(f"span.{span.name}.ms").observe(span.wall_ms)

    def span(self, name: str, **attrs: object) -> Span:
        """A new span (enter it with ``with``)."""
        return Span(self, name, attrs or None)

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.iter_spans())

    # -- traversal -----------------------------------------------------
    def iter_spans(self) -> Iterator[Tuple[Span, int, str]]:
        """Pre-order (span, depth, slash-path) over all finished roots."""
        stack: List[Tuple[Span, int, str]] = [
            (root, 0, root.name) for root in reversed(self.roots)
        ]
        while stack:
            span, depth, path = stack.pop()
            yield span, depth, path
            for child in reversed(span.children):
                stack.append((child, depth + 1, f"{path}/{child.name}"))

    # -- exports -------------------------------------------------------
    def to_dicts(self, include_timing: bool = True) -> List[Dict[str, object]]:
        return [root.to_dict(include_timing) for root in self.roots]

    def export_json(self, include_timing: bool = True) -> str:
        return json.dumps(
            {"spans": self.to_dicts(include_timing)},
            sort_keys=True, indent=2,
        )

    def export_jsonl(self, include_timing: bool = True) -> str:
        """One JSON object per span, pre-order; trailing newline.

        With ``include_timing=False`` the output depends only on the
        instrumented code's control flow -- byte-identical across runs of
        a deterministic search (the "modulo timestamps" trace identity).
        """
        lines = []
        for span, depth, path in self.iter_spans():
            record: Dict[str, object] = {
                "name": span.name, "depth": depth, "path": path,
            }
            if span.attrs:
                record["attrs"] = dict(span.attrs)
            if include_timing:
                record["wall_ms"] = round(span.wall_ms, 3)
                record["cpu_ms"] = round(span.cpu_ms, 3)
            lines.append(json.dumps(record, sort_keys=True))
        return "".join(line + "\n" for line in lines)

    def format_tree(self) -> str:
        """The human rendering ``repro trace`` prints."""
        width = max(
            (2 * depth + len(span.name) for span, depth, _ in self.iter_spans()),
            default=0,
        )
        lines = []
        for span, depth, _path in self.iter_spans():
            label = "  " * depth + span.name
            attrs = ""
            if span.attrs:
                attrs = "  " + " ".join(
                    f"{key}={value}" for key, value in sorted(span.attrs.items())
                )
            lines.append(
                f"{label:<{width}}  wall {span.wall_ms:9.3f} ms  "
                f"cpu {span.cpu_ms:9.3f} ms{attrs}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self.roots.clear()
        self._local = threading.local()
        self.registry.reset()

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)})"
