"""The unified :class:`EngineStats` schema every engine reports.

Before this module, ``framework.last_stats`` had a different shape per
algorithm: stark exposed its ``SearchStats.__slots__`` dict, stard a
two-key propagation dict, and rank-joined general queries nothing at all
-- so batch merging, benchmarks and dashboards all special-cased the
algorithm.  ``EngineStats`` fixes the schema: **every** search populates
the same counters (irrelevant ones stay zero), ``as_dict`` always emits
the same keys in the same order, and numeric dicts merge by plain
addition (the batch API's cross-query aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Mapping

#: The unified counter schema, in export order.  Regression-tested: every
#: algorithm's ``last_stats`` exposes exactly these keys.
STAT_KEYS = (
    "pivots_considered",
    "pivots_evaluated",
    "pivots_with_match",
    "pivots_sketch_pruned",
    "matches_emitted",
    "lattice_pops",
    "nodes_traversed",
    "messages_propagated",
    "joins_attempted",
    "join_depth",
    "cache_hits",
    "cache_misses",
)


@dataclass
class EngineStats:
    """One search run's counters under the unified schema.

    ``algorithm`` identifies the engine that produced the run ("stark",
    "stard", "starjoin", ...); it is carried as an attribute but excluded
    from :meth:`as_dict`, which stays numeric-only so snapshots from many
    queries (possibly different engines) merge by addition.
    """

    algorithm: str = ""
    pivots_considered: int = 0
    pivots_evaluated: int = 0
    pivots_with_match: int = 0
    pivots_sketch_pruned: int = 0
    matches_emitted: int = 0
    lattice_pops: int = 0
    nodes_traversed: int = 0
    messages_propagated: int = 0
    joins_attempted: int = 0
    join_depth: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Numeric counters only, every schema key present, fixed order."""
        return {key: getattr(self, key) for key in STAT_KEYS}

    @classmethod
    def from_dict(cls, data: Mapping[str, int],
                  algorithm: str = "") -> "EngineStats":
        known = {f.name for f in fields(cls)} - {"algorithm"}
        return cls(algorithm=algorithm,
                   **{k: int(v) for k, v in data.items() if k in known})

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Accumulate *other*'s counters into self (cross-query roll-up)."""
        for key in STAT_KEYS:
            setattr(self, key, getattr(self, key) + getattr(other, key))
        return self

    def summary(self) -> str:
        busy = ", ".join(
            f"{key}={getattr(self, key)}"
            for key in STAT_KEYS if getattr(self, key)
        )
        name = self.algorithm or "engine"
        return f"{name}: {busy}" if busy else f"{name}: all counters zero"
