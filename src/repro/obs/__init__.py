"""``repro.obs``: the observability layer (metrics + tracing + stats).

Three pieces:

* :class:`MetricsRegistry` -- named counters, gauges and histograms
  (p50/p95/p99), exported as sorted JSON-safe dicts that merge exactly
  across parallel workers (:mod:`repro.obs.metrics`).
* :class:`Tracer` / :func:`trace` -- a nesting span tracer recording
  wall *and* CPU time per phase, with JSON / JSONL / tree-text export
  (:mod:`repro.obs.tracer`).
* :class:`EngineStats` -- the unified per-search counter schema that
  replaced the divergent per-algorithm ``last_stats`` dicts
  (:mod:`repro.obs.stats`).

**Zero cost when disabled.**  The module holds one process-global active
tracer (``None`` by default).  Every instrumentation hook --
:func:`trace`, :func:`count`, :func:`observe` -- starts with a single
global load + ``None`` test and returns immediately when observability is
off; :func:`trace` hands back a shared no-op span, so instrumented
``with`` blocks allocate nothing.  The overhead-parity benchmark gate
(``benchmarks/bench_perf_cache.py --smoke``) holds the *enabled*
path to <5% wall-time on a full batch workload.

Typical use::

    from repro import obs

    with obs.capture() as tracer:          # enable, run, restore
        engine.search(query, k=5)
    print(tracer.format_tree())            # nested spans, wall/CPU ms
    print(tracer.registry.as_dict())       # counters + histograms

or imperatively via :func:`enable` / :func:`disable`.  The span stack is
per-thread; fork workers inherit the enabled state through the fork.

Well-known counter families (all emitted only while enabled):

* ``candidates.*`` spans -- candidate generation route and volume;
* ``serve.*`` -- admission, breaker and queue events (``repro.serve``);
* ``shard.*`` -- sharded execution (``repro.shard``):
  ``shard.searches``, ``shard.streams_opened``, ``shard.chunks``,
  ``shard.matches_pulled`` (counters), ``shard.bound_terminated``
  (streams stopped early by the rank-merge threshold),
  ``shard.dedup_hits`` (duplicate matches suppressed by the merger),
  ``shard.worker_crashes`` / ``shard.inline_fallbacks`` (fault
  recovery), ``shard.fallback_queries`` (non-star or budgeted queries
  served by the single-process engine), plus gauges ``shard.count``
  and ``shard.replication_factor``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.stats import STAT_KEYS, EngineStats
from repro.obs.tracer import NOOP_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "EngineStats",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STAT_KEYS",
    "Span",
    "Tracer",
    "active_tracer",
    "capture",
    "count",
    "count_many",
    "disable",
    "enable",
    "is_enabled",
    "observe",
    "registry",
    "set_gauge",
    "snapshot",
    "trace",
]

#: The process-global active tracer; ``None`` means observability is off.
_ACTIVE: Optional[Tracer] = None


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Turn observability on (building a fresh :class:`Tracer` if needed)."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable() -> Optional[Tracer]:
    """Turn observability off; returns the tracer that was active."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    return previous


def is_enabled() -> bool:
    """True when an active tracer is collecting."""
    return _ACTIVE is not None


def active_tracer() -> Optional[Tracer]:
    """The active tracer, or None when disabled."""
    return _ACTIVE


def registry() -> Optional[MetricsRegistry]:
    """The active tracer's metric registry, or None when disabled."""
    tracer = _ACTIVE
    return tracer.registry if tracer is not None else None


@contextmanager
def capture(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Enable observability for a block, restoring the prior state after.

    Yields the (fresh or supplied) tracer; on exit the previously active
    tracer -- usually None -- is reinstated, so captures nest safely.
    """
    global _ACTIVE
    previous = _ACTIVE
    active = enable(tracer)
    try:
        yield active
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Hot-path hooks: one global load + None test when disabled.
# ----------------------------------------------------------------------
def trace(name: str, **attrs: object):
    """A span context manager, or the shared no-op span when disabled.

    Attrs must be deterministic values (counts, ids) -- they are exported
    verbatim and the determinism suite compares traces byte-for-byte.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Increment counter *name* when observability is enabled."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.registry.counter(name).inc(n)


def count_many(pairs: Dict[str, int]) -> None:
    """Increment several counters under one enabled-check.

    Bulk flush for callers that accumulate locally during a hot loop
    (e.g. the shard merge loop) and publish once per operation; zero
    entries are skipped so snapshots stay sparse.
    """
    tracer = _ACTIVE
    if tracer is not None:
        counter = tracer.registry.counter
        for name, n in pairs.items():
            if n:
                counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record *value* into histogram *name* when enabled."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* when enabled."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.registry.gauge(name).set(value)


def snapshot(include_samples: bool = False) -> Optional[Dict[str, dict]]:
    """The active registry's :meth:`MetricsRegistry.as_dict`, or None."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.registry.as_dict(include_samples)
