"""STAR: fast top-k subgraph search in knowledge graphs.

A from-scratch reproduction of Yang, Han, Wu, Yan: "Fast Top-K Search in
Knowledge Graphs" (ICDE 2016).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the reproduced evaluation.

Quickstart::

    from repro import Star, star_query, dbpedia_like

    graph = dbpedia_like(scale=0.5)
    query = star_query("Brad", [("collaborated_with", "?"),
                                ("won", "Academy Award")],
                       pivot_type="actor")
    engine = Star(graph)
    for match in engine.search(query, k=5):
        print(match.score, match.assignment)
"""

from repro import obs
from repro.obs import STAT_KEYS, EngineStats, MetricsRegistry, Tracer
from repro.baselines import BeliefPropagation, GraphTA, brute_force_topk
from repro.core import (
    HybridStarSearch,
    Match,
    Star,
    StarDSearch,
    StarJoin,
    StarKSearch,
    tune_parameters,
)
from repro.errors import (
    BudgetExceededError,
    DataCorruptionError,
    DatasetError,
    DecompositionError,
    GraphError,
    InjectedFaultError,
    OverloadedError,
    QueryError,
    ReproError,
    ScoringError,
    SearchError,
    SearchTimeoutError,
    SnapshotCorruptionError,
    WorkerCrashError,
)
from repro.graph import (
    KnowledgeGraph,
    dbpedia_like,
    freebase_like,
    load_graph,
    save_graph,
    summarize,
    yago2_like,
)
from repro.query import (
    Query,
    StarQuery,
    decompose,
    random_subgraph_query,
    star_query,
    star_workload,
)
from repro.perf import BatchResult, CandidateCache, attach_cache, search_many
from repro.runtime import Budget, FaultSpec, SearchReport, faulty
from repro.similarity import (
    Descriptor,
    ScoringConfig,
    ScoringFunction,
    learn_weights,
)

__version__ = "0.1.0"

__all__ = [
    "BatchResult",
    "BeliefPropagation",
    "Budget",
    "BudgetExceededError",
    "CandidateCache",
    "DataCorruptionError",
    "DatasetError",
    "DecompositionError",
    "Descriptor",
    "EngineStats",
    "FaultSpec",
    "GraphError",
    "GraphTA",
    "HybridStarSearch",
    "InjectedFaultError",
    "KnowledgeGraph",
    "Match",
    "MetricsRegistry",
    "OverloadedError",
    "Query",
    "QueryError",
    "ReproError",
    "STAT_KEYS",
    "ScoringConfig",
    "ScoringError",
    "ScoringFunction",
    "SearchError",
    "SearchReport",
    "SearchTimeoutError",
    "SnapshotCorruptionError",
    "Star",
    "StarDSearch",
    "StarJoin",
    "StarKSearch",
    "StarQuery",
    "Tracer",
    "WorkerCrashError",
    "attach_cache",
    "obs",
    "brute_force_topk",
    "dbpedia_like",
    "decompose",
    "faulty",
    "freebase_like",
    "learn_weights",
    "load_graph",
    "random_subgraph_query",
    "save_graph",
    "search_many",
    "star_query",
    "star_workload",
    "summarize",
    "tune_parameters",
    "yago2_like",
]
