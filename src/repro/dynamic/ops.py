"""Mutation streams: JSONL operation records applied to a live graph.

A serving deployment receives graph updates as a stream of operations
(the `repro apply-delta` CLI command reads them from a file, one JSON
array per line).  The op vocabulary mirrors the ``KnowledgeGraph``
mutation API one-to-one, and replaying the same op sequence onto the
same starting graph always yields identical node/edge ids -- ids are
allocation-order slots and removals tombstone rather than renumber --
which is what lets the differential-oracle tests compare a mutated
graph against a from-scratch replay byte for byte.

Record shapes (positional JSON arrays)::

    ["add_node", name, type, [keyword, ...], {attr: value}]
    ["add_edge", src, dst, relation, {attr: value}]
    ["remove_node", node_id]
    ["remove_edge", edge_id]
    ["update_node_attrs", node_id, {attr: value_or_null}]
    ["update_edge", edge_id, relation_or_null, {attr: value_or_null}]

Trailing arguments may be omitted when empty (``["add_node", "Troy"]``
is valid).  ``null`` attribute values delete keys, matching the merge
semantics of the update methods.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Sequence

from repro.errors import DatasetError

OP_NAMES = (
    "add_node", "add_edge", "remove_node", "remove_edge",
    "update_node_attrs", "update_edge",
)


def apply_operation(graph, record: Sequence[Any]) -> Any:
    """Apply one op *record* to *graph*; returns the mutation's result.

    Raises:
        DatasetError: on a malformed record or unknown op name.
        GraphError: propagated from the graph when the op targets a
            missing node/edge.
    """
    if not isinstance(record, (list, tuple)) or not record:
        raise DatasetError(f"malformed operation record: {record!r}")
    op, *rest = record
    try:
        if op == "add_node":
            name, type_, keywords, attrs = _pad(rest, 4, ("", "", [], {}))
            return graph.add_node(name, type_, keywords=tuple(keywords),
                                  **attrs)
        if op == "add_edge":
            src, dst, relation, attrs = _pad(rest, 4, (None, None, "", {}))
            return graph.add_edge(int(src), int(dst), relation, **attrs)
        if op == "remove_node":
            (node_id,) = _pad(rest, 1, (None,))
            return graph.remove_node(int(node_id))
        if op == "remove_edge":
            (edge_id,) = _pad(rest, 1, (None,))
            return graph.remove_edge(int(edge_id))
        if op == "update_node_attrs":
            node_id, attrs = _pad(rest, 2, (None, {}))
            return graph.update_node_attrs(int(node_id), **attrs)
        if op == "update_edge":
            edge_id, relation, attrs = _pad(rest, 3, (None, None, {}))
            return graph.update_edge(int(edge_id), relation=relation, **attrs)
    except (TypeError, ValueError) as exc:
        raise DatasetError(f"malformed {op!r} record {record!r}: {exc}") from exc
    raise DatasetError(
        f"unknown operation {op!r} (expected one of {', '.join(OP_NAMES)})")


def _pad(args: Sequence[Any], size: int, defaults: Sequence[Any]) -> List[Any]:
    """Right-pad *args* with *defaults*; JSON ``null`` falls back to the
    default too, except where the default itself is ``None`` (that marks
    positions -- ids, update_edge's relation -- where null is meaningful).
    """
    if len(args) > size:
        raise ValueError(f"expected at most {size} arguments, got {len(args)}")
    padded = list(args) + list(defaults[len(args):])
    return [default if value is None and default is not None else value
            for value, default in zip(padded, defaults)]


def apply_operations(graph, records: Iterable[Sequence[Any]]) -> int:
    """Apply *records* in order; returns the number applied.

    Fails fast: a bad record raises after every earlier record has
    already been applied (callers replaying a delta file should treat
    the graph as suspect and rebuild or re-load a snapshot).
    """
    count = 0
    for record in records:
        apply_operation(graph, record)
        count += 1
    return count


def load_operations(path) -> List[List[Any]]:
    """Read a JSONL operation file (blank lines and ``#`` comments ok)."""
    records: List[List[Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(
                    f"{path}:{lineno}: invalid JSON: {exc}") from exc
            if not isinstance(record, list):
                raise DatasetError(
                    f"{path}:{lineno}: expected a JSON array, "
                    f"got {type(record).__name__}")
            records.append(record)
    return records


def save_operations(records: Iterable[Sequence[Any]], path) -> None:
    """Write op *records* as JSONL (inverse of :func:`load_operations`)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(list(record), sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")
