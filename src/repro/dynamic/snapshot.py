"""Compact versioned binary snapshots of :class:`KnowledgeGraph`.

The line-JSON format in :mod:`repro.graph.io` identifies nodes by their
*position* in the file, which breaks as soon as a graph has tombstones:
ids with gaps cannot round-trip positionally.  Snapshots exist so a
serving process can persist a *mutated* graph -- including removed
slots, every derived index, the structural version and the journal tail
-- and restart warm: ids stay stable, warm caches keyed on those ids
remain meaningful, and ``delta_since`` keeps answering across the
restart for consumers whose state predates the snapshot.

Layout (all multi-byte integers are unsigned LEB128 varints; strings
are UTF-8 with a varint byte-length prefix; id sets are delta-encoded
ascending)::

    magic  b"RKGS"
    u8     format version (currently 1)
    u32le  CRC-32 of the uncompressed body
    varint uncompressed body length
    bytes  zlib-compressed body

    body := name  directed:u8  structural_version
            node_section edge_section
            token_index type_index relation_refcounts max_degree
            journal_section

Node and edge sections store *slots*: a presence byte per slot so
tombstones survive.  Attribute maps are stored as canonical JSON
(sorted keys), which makes ``save(load(save(g)))`` byte-identical --
tested in ``tests/test_dynamic.py``.  The lazily-built subtype closure
is deliberately *not* persisted: it derives from the ontology table,
which may differ in the loading process.

Loading a snapshot calls :func:`repro.textutil.clear_token_memo`:
the token memo may be sized for the previous graph's vocabulary, and a
graph swap is exactly the boundary where stale entries stop paying for
themselves.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.dynamic.journal import Delta, DeltaJournal
from repro.errors import DatasetError, SnapshotCorruptionError

MAGIC = b"RKGS"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sBI")  # magic, format version, body CRC-32


class _Writer:
    """Append-only little encoder for the snapshot body."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def varint(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"varint cannot encode negative value {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._buf.append(byte | 0x80)
            else:
                self._buf.append(byte)
                return

    def string(self, value: str) -> None:
        raw = value.encode("utf-8")
        self.varint(len(raw))
        self._buf += raw

    def attrs(self, mapping: Dict[str, Any]) -> None:
        # Canonical JSON so identical graphs produce identical bytes.
        if mapping:
            self.string(json.dumps(mapping, sort_keys=True,
                                   separators=(",", ":")))
        else:
            self.string("")

    def id_set(self, ids) -> None:
        ordered = sorted(ids)
        self.varint(len(ordered))
        previous = 0
        for node_id in ordered:
            self.varint(node_id - previous)  # ascending => non-negative
            previous = node_id

    def string_set(self, values) -> None:
        ordered = sorted(values)
        self.varint(len(ordered))
        for value in ordered:
            self.string(value)

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class _Reader:
    """Bounds-checked decoder: every failure is a typed
    :class:`SnapshotCorruptionError` carrying the body offset where
    decoding went wrong -- never a bare ``IndexError`` / ``ValueError``
    escaping from a flipped byte.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def offset(self) -> int:
        return self._pos

    def _corrupt(self, message: str, at: Optional[int] = None):
        raise SnapshotCorruptionError(
            f"corrupt snapshot: {message}",
            offset=self._pos if at is None else at,
        )

    def u8(self) -> int:
        if self._pos >= len(self._data):
            self._corrupt("truncated body (unexpected end of data)")
        value = self._data[self._pos]
        self._pos += 1
        return value

    def varint(self) -> int:
        start = self._pos
        value = 0
        shift = 0
        while True:
            byte = self.u8()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                self._corrupt("varint overflow", at=start)

    def count(self) -> int:
        """A varint used as an element count.

        Bounded by the bytes that remain: every encoded element costs at
        least one byte, so a larger claim is corruption -- caught here
        rather than surfacing as a giant allocation in a decode loop.
        """
        start = self._pos
        value = self.varint()
        if value > len(self._data) - self._pos:
            self._corrupt(
                f"implausible count {value} with "
                f"{len(self._data) - self._pos} byte(s) left", at=start)
        return value

    def string(self) -> str:
        start = self._pos
        length = self.varint()
        raw = self._data[self._pos:self._pos + length]
        if len(raw) != length:
            self._corrupt("truncated string", at=start)
        self._pos += length
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            self._corrupt(f"invalid UTF-8 in string: {exc}", at=start)

    def attrs(self) -> Dict[str, Any]:
        start = self._pos
        raw = self.string()
        if not raw:
            return {}
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._corrupt(f"invalid attrs JSON: {exc}", at=start)
        if not isinstance(decoded, dict):
            self._corrupt(
                f"attrs must decode to an object, "
                f"got {type(decoded).__name__}", at=start)
        return decoded

    def id_set(self) -> List[int]:
        count = self.count()
        ids: List[int] = []
        previous = 0
        for _ in range(count):
            previous += self.varint()
            ids.append(previous)
        return ids

    def string_set(self) -> List[str]:
        return [self.string() for _ in range(self.count())]

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


# ----------------------------------------------------------------------
def _encode(graph) -> bytes:
    writer = _Writer()
    writer.string(graph.name)
    writer.u8(1 if graph.directed else 0)
    writer.varint(graph.version)

    # Node slots (presence byte preserves tombstones / stable ids).
    writer.varint(graph.num_node_slots)
    for data in graph._nodes:
        if data is None:
            writer.u8(0)
            continue
        writer.u8(1)
        writer.string(data.name)
        writer.string(data.type)
        writer.varint(len(data.keywords))
        for keyword in data.keywords:
            writer.string(keyword)
        writer.attrs(data.attrs)

    writer.varint(graph.num_edge_slots)
    for record in graph._edges:
        if record is None:
            writer.u8(0)
            continue
        writer.u8(1)
        src, dst, edata = record
        writer.varint(src)
        writer.varint(dst)
        writer.string(edata.relation)
        writer.attrs(edata.attrs)

    # Derived indexes.  Token postings are written sorted by token so the
    # encoding is canonical; posting order is a set anyway.  The type
    # index preserves dict insertion order -- template generation walks
    # types() in first-seen order and a reload must not reorder it.
    writer.varint(len(graph._token_index))
    for token in sorted(graph._token_index):
        writer.string(token)
        writer.id_set(graph._token_index[token])
    writer.varint(len(graph._type_index))
    for type_name, members in graph._type_index.items():
        writer.string(type_name)
        writer.varint(len(members))
        previous = 0
        for node_id in members:  # insertion order is ascending (append-only)
            writer.varint(node_id - previous)
            previous = node_id
    writer.varint(len(graph._relations))
    for relation in sorted(graph._relations):
        writer.string(relation)
        writer.varint(graph._relations[relation])
    writer.varint(graph.max_degree)

    # Journal tail: limit, latest version, retained entries.
    writer.varint(graph.journal.limit)
    writer.varint(graph.journal.latest_version)
    entries = graph.journal.entries()
    writer.varint(len(entries))
    for delta in entries:
        writer.varint(delta.version)
        writer.string(delta.kind)
        writer.u8(1 if delta.stats_changed else 0)
        writer.id_set(delta.nodes)
        writer.string_set(delta.tokens)
        writer.string_set(delta.types)
        writer.string_set(delta.relations)
    return writer.getvalue()


def _decode(body: bytes):
    from repro.graph.knowledge_graph import EdgeData, KnowledgeGraph, NodeData

    reader = _Reader(body)
    name = reader.string()
    directed = bool(reader.u8())
    version = reader.varint()
    graph = KnowledgeGraph(name=name, directed=directed)

    node_slots = reader.count()
    nodes: List[Optional[NodeData]] = []
    removed_nodes = 0
    for _ in range(node_slots):
        if not reader.u8():
            nodes.append(None)
            removed_nodes += 1
            continue
        node_name = reader.string()
        node_type = reader.string()
        keywords = tuple(reader.string() for _ in range(reader.count()))
        nodes.append(NodeData(name=node_name, type=node_type,
                              keywords=keywords, attrs=reader.attrs()))

    edge_slots = reader.count()
    edges: List[Optional[Tuple[int, int, EdgeData]]] = []
    removed_edges = 0
    for _ in range(edge_slots):
        if not reader.u8():
            edges.append(None)
            removed_edges += 1
            continue
        src = reader.varint()
        dst = reader.varint()
        relation = reader.string()
        edges.append((src, dst, EdgeData(relation=relation,
                                         attrs=reader.attrs())))

    token_index: Dict[str, set] = {}
    for _ in range(reader.count()):
        token = reader.string()
        members_set = set(reader.id_set())
        # Bound-check index membership: a flipped byte inside an id_set
        # must not yield a graph that silently references nonexistent or
        # tombstoned nodes (queries would return wrong results instead
        # of failing loudly).
        for nid in members_set:
            if nid >= node_slots or nodes[nid] is None:
                raise SnapshotCorruptionError(
                    f"corrupt snapshot: token {token!r} posting "
                    f"references dead node {nid}", offset=reader.offset)
        token_index[token] = members_set
    type_index: Dict[str, List[int]] = {}
    for _ in range(reader.count()):
        type_name = reader.string()
        count = reader.count()
        members: List[int] = []
        previous = 0
        for _ in range(count):
            previous += reader.varint()
            members.append(previous)
        for nid in members:
            if nid >= node_slots or nodes[nid] is None:
                raise SnapshotCorruptionError(
                    f"corrupt snapshot: type {type_name!r} member list "
                    f"references dead node {nid}", offset=reader.offset)
        type_index[type_name] = members
    relations: Dict[str, int] = {}
    for _ in range(reader.count()):
        relation = reader.string()
        relations[relation] = reader.varint()
    max_degree = reader.varint()

    journal_limit = reader.varint()
    journal_latest = reader.varint()
    journal_entries: List[Delta] = []
    for _ in range(reader.count()):
        delta_version = reader.varint()
        kind = reader.string()
        stats_changed = bool(reader.u8())
        delta_nodes = frozenset(reader.id_set())
        # Journal entries may name tombstoned nodes (that is what a
        # remove_node delta records) but never ids past the slot count.
        for nid in delta_nodes:
            if nid >= node_slots:
                raise SnapshotCorruptionError(
                    f"corrupt snapshot: journal delta v{delta_version} "
                    f"references node {nid} >= {node_slots} slot(s)",
                    offset=reader.offset)
        journal_entries.append(Delta(
            delta_version, kind,
            nodes=delta_nodes,
            tokens=frozenset(reader.string_set()),
            types=frozenset(reader.string_set()),
            relations=frozenset(reader.string_set()),
            stats_changed=stats_changed,
        ))
    if not reader.exhausted:
        raise SnapshotCorruptionError(
            "corrupt snapshot: trailing bytes after body",
            offset=reader.offset)
    if journal_latest != version:
        raise SnapshotCorruptionError(
            f"corrupt snapshot: journal latest {journal_latest} "
            f"!= graph version {version}", offset=reader.offset)

    # Rebuild adjacency in edge-id order: removals preserve relative
    # order of survivors, so this reproduces the live graph's lists
    # exactly (engines iterate neighbor lists in order).
    adj: List[List[Tuple[int, int]]] = [[] for _ in range(node_slots)]
    out: List[List[Tuple[int, int]]] = [[] for _ in range(node_slots)]
    inc: List[List[Tuple[int, int]]] = [[] for _ in range(node_slots)]
    for edge_id, record in enumerate(edges):
        if record is None:
            continue
        src, dst, _data = record
        if not (0 <= src < node_slots and 0 <= dst < node_slots) \
                or nodes[src] is None or nodes[dst] is None:
            raise SnapshotCorruptionError(
                f"corrupt snapshot: edge {edge_id} references dead node",
                offset=reader.offset)
        adj[src].append((dst, edge_id))
        adj[dst].append((src, edge_id))
        out[src].append((dst, edge_id))
        inc[dst].append((src, edge_id))

    graph._nodes = nodes
    graph._edges = edges
    graph._removed_nodes = removed_nodes
    graph._removed_edges = removed_edges
    graph._adj = adj
    graph._out = out
    graph._in = inc
    graph._token_index = token_index
    graph._type_index = type_index
    graph._relations = relations
    graph._max_degree = max_degree
    graph.version = version
    graph.journal = DeltaJournal(limit=journal_limit)
    graph.journal.replace(journal_entries, latest=journal_latest)
    return graph


# ----------------------------------------------------------------------
def save_snapshot(graph, path) -> None:
    """Write *graph* to *path* in the snapshot format described above."""
    body = _encode(graph)
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, zlib.crc32(body) & 0xFFFFFFFF)
    payload = zlib.compress(body, 6)
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(payload)


def load_snapshot(path):
    """Load a graph written by :func:`save_snapshot`.

    The loaded graph gets a fresh ``uid`` (it is a different in-process
    object; warm *in-process* caches key on uid and must not be fooled),
    keeps its persisted structural version and journal, and clears the
    process-wide token memo (graph-swap boundary).

    Raises:
        DatasetError: for a missing file, non-snapshot content (bad
            magic) or an unsupported format version.
        SnapshotCorruptionError: for everything that *should* have been
            a readable snapshot but is not -- truncation, a failed
            decompression, a CRC mismatch, or structural corruption in
            the body.  Always typed, with the failing offset attached;
            a bare ``struct.error`` / ``zlib.error`` / ``IndexError``
            never escapes this function.
    """
    from repro.textutil import clear_token_memo

    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        raise DatasetError(f"graph file not found: {path}") from None
    if raw.startswith(b"RKGS2"):
        raise DatasetError(
            f"{path}: this is an RKGS2 store, not an RKGS snapshot; "
            "open it with KnowledgeGraph.open_mmap (or load_any)")
    if not raw.startswith(MAGIC):
        raise DatasetError(f"{path}: not a repro snapshot (bad magic)")
    if len(raw) < _HEADER.size:
        raise SnapshotCorruptionError(
            "corrupt snapshot: truncated header", path=path,
            offset=len(raw))
    _magic, fmt, crc = _HEADER.unpack_from(raw)
    if fmt != FORMAT_VERSION:
        raise DatasetError(
            f"{path}: unsupported snapshot format version {fmt} "
            f"(this build reads {FORMAT_VERSION})")
    try:
        body = zlib.decompress(raw[_HEADER.size:])
    except zlib.error as exc:
        raise SnapshotCorruptionError(
            f"corrupt snapshot body: {exc}", path=path,
            offset=_HEADER.size) from None
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise SnapshotCorruptionError(
            "snapshot CRC mismatch (body does not match header checksum)",
            path=path, offset=_HEADER.size)
    try:
        graph = _decode(body)
    except SnapshotCorruptionError as exc:
        if exc.path is not None:
            raise
        # Re-raise with the file attached; offsets from the reader are
        # into the uncompressed body.
        raise SnapshotCorruptionError(
            exc.base_message, path=path, offset=exc.offset) from None
    except DatasetError:
        raise
    except (ValueError, KeyError, IndexError, OverflowError,
            TypeError) as exc:
        # Backstop: no decoder slip may surface as an untyped error.
        raise SnapshotCorruptionError(
            f"corrupt snapshot: {type(exc).__name__}: {exc}",
            path=path) from exc
    clear_token_memo()
    return graph


def load_any(path):
    """Load *path* as an RKGS2 store, an RKGS snapshot, or line-JSON.

    CLI entry points accept any of the three formats; the magic bytes
    make sniffing unambiguous (``RKGS2`` vs ``RKGS`` + version byte
    0x01 vs line-JSON starting with ``{``).  RKGS2 stores open
    zero-copy via :meth:`KnowledgeGraph.open_mmap`.
    """
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(5)
    except FileNotFoundError:
        raise DatasetError(f"graph file not found: {path}") from None
    if prefix == b"RKGS2":
        from repro.graph.knowledge_graph import KnowledgeGraph

        return KnowledgeGraph.open_mmap(path)
    if prefix.startswith(MAGIC):
        return load_snapshot(path)
    from repro.graph.io import load_graph

    return load_graph(path)
