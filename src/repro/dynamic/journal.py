"""The delta journal: what each graph mutation touched.

The paper's setting is a *live* knowledge graph -- node/edge scores are
computed online against continuously maintained data (Section II; Wang et
al.'s response-time-bounded search likewise assumes incrementally
maintained semantic indexes).  Every derived structure in this codebase
(the cross-query :class:`repro.perf.CandidateCache`, the scorer's
content-keyed memos, the subtype-closure index) used to treat any bump of
``KnowledgeGraph.version`` as "throw everything away".  The journal is
what replaces that: each mutation appends a :class:`Delta` recording the
node ids, description tokens, types and relation labels it touched, plus
a ``stats_changed`` bit for mutations that shift *global* scoring
statistics (IDF tables, the max-degree normalizer) and therefore may
change every score.

Consumers call :meth:`DeltaJournal.since` with the version their cached
state was computed at and get back a merged :class:`DeltaSummary`; a
cached artifact survives iff its dependency footprint is disjoint from
the summary (see ``repro.perf.cache`` for the candidate-cache predicate
and ``ScoringFunction.refresh`` for the memo refresh).  The journal is
bounded: once trimmed past a consumer's version, :meth:`since` returns
``None`` and the consumer must fall back to a full rebuild -- staleness
is never silent.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, FrozenSet, Iterable, List, Optional, Tuple

_EMPTY: FrozenSet = frozenset()


class Delta:
    """What one structural mutation touched.

    Attributes:
        version: the graph version *after* the mutation applied.
        kind: mutation name (``add_node``, ``remove_edge``, ...).
        nodes: node ids whose description, degree or existence changed
            (for edge mutations: both endpoints; for node removal: the
            node and every former neighbor, whose degrees changed).
        tokens: description tokens added to or removed from the inverted
            index -- a cached shortlist whose (synonym-expanded) query
            tokens intersect these may gain or lose members.
        types: node types whose membership changed (drives the
            subtype-closure part of the invalidation predicate).
        relations: relation labels added/removed/renamed.
        stats_changed: True when corpus-level statistics changed --
            node count (IDF denominators) or max degree (degree-prior
            normalizer) -- in which case *every* cached score is suspect
            and fine-grained survival is off the table.
    """

    __slots__ = ("version", "kind", "nodes", "tokens", "types",
                 "relations", "stats_changed")

    def __init__(
        self,
        version: int,
        kind: str,
        nodes: FrozenSet[int] = _EMPTY,
        tokens: FrozenSet[str] = _EMPTY,
        types: FrozenSet[str] = _EMPTY,
        relations: FrozenSet[str] = _EMPTY,
        stats_changed: bool = False,
    ) -> None:
        self.version = version
        self.kind = kind
        self.nodes = nodes
        self.tokens = tokens
        self.types = types
        self.relations = relations
        self.stats_changed = stats_changed

    def as_record(self) -> Tuple:
        """JSON-safe tuple (used by snapshot serialization)."""
        return (
            self.version, self.kind, sorted(self.nodes),
            sorted(self.tokens), sorted(self.types),
            sorted(self.relations), self.stats_changed,
        )

    @classmethod
    def from_record(cls, record: Iterable) -> "Delta":
        version, kind, nodes, tokens, types, relations, stats = record
        return cls(
            int(version), kind, frozenset(nodes), frozenset(tokens),
            frozenset(types), frozenset(relations), bool(stats),
        )

    def __repr__(self) -> str:
        return (f"Delta(v{self.version} {self.kind}: nodes={sorted(self.nodes)}"
                f"{' STATS' if self.stats_changed else ''})")


class DeltaSummary:
    """Union of a contiguous run of deltas ``(since_version, up_to]``."""

    __slots__ = ("nodes", "tokens", "types", "relations", "stats_changed",
                 "count")

    def __init__(self) -> None:
        self.nodes: FrozenSet[int] = _EMPTY
        self.tokens: FrozenSet[str] = _EMPTY
        self.types: FrozenSet[str] = _EMPTY
        self.relations: FrozenSet[str] = _EMPTY
        self.stats_changed = False
        self.count = 0

    def absorb(self, delta: Delta) -> "DeltaSummary":
        self.count += 1
        self.stats_changed = self.stats_changed or delta.stats_changed
        # Short-circuit: once global stats changed, membership detail is
        # irrelevant (every consumer rebuilds) -- skip the set unions.
        if not self.stats_changed:
            if delta.nodes:
                self.nodes = self.nodes | delta.nodes
            if delta.tokens:
                self.tokens = self.tokens | delta.tokens
            if delta.types:
                self.types = self.types | delta.types
        if delta.relations:
            self.relations = self.relations | delta.relations
        return self

    @property
    def empty(self) -> bool:
        return self.count == 0

    def __repr__(self) -> str:
        return (f"DeltaSummary({self.count} delta(s), "
                f"nodes={sorted(self.nodes)}, stats={self.stats_changed})")


class DeltaJournal:
    """Bounded, append-only log of :class:`Delta` records.

    Args:
        limit: maximum retained entries.  Older entries are trimmed;
            :meth:`since` answers ``None`` for versions that precede the
            retained window, forcing consumers to rebuild rather than
            trust an incomplete diff.
        base_version: the graph version the journal starts at.
    """

    def __init__(self, limit: int = 4096, base_version: int = 0) -> None:
        if limit < 1:
            raise ValueError(f"journal limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: Deque[Delta] = deque(maxlen=limit)
        self._latest = base_version

    # ------------------------------------------------------------------
    def append(self, delta: Delta) -> None:
        """Record *delta* (entries must arrive in version order)."""
        self._entries.append(delta)  # deque drops the oldest at the cap
        self._latest = delta.version

    @property
    def start_version(self) -> int:
        """Oldest version diffs can be answered *from* (exclusive)."""
        if self._entries:
            return self._entries[0].version - 1
        return self._latest

    @property
    def latest_version(self) -> int:
        return self._latest

    def since(self, version: int) -> Optional[DeltaSummary]:
        """Merged summary of every delta after *version*.

        Returns ``None`` when *version* precedes the retained window
        (the caller cannot know what happened and must rebuild), and an
        empty summary when the journal has nothing newer.
        """
        if version >= self._latest:
            return DeltaSummary()
        if version < self.start_version:
            return None
        summary = DeltaSummary()
        for delta in reversed(self._entries):
            if delta.version <= version:
                break
            summary.absorb(delta)
        return summary

    # ------------------------------------------------------------------
    def entries(self) -> List[Delta]:
        """Retained entries, oldest first (copy)."""
        return list(self._entries)

    def replace(self, entries: Iterable[Delta], latest: int) -> None:
        """Restore journal state (snapshot load)."""
        self._entries.clear()
        for delta in entries:
            self._entries.append(delta)
        self._latest = latest

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"DeltaJournal({len(self._entries)}/{self.limit} entries, "
                f"window ({self.start_version}, {self._latest}])")
