"""``repro.dynamic``: live-graph updates, delta journaling, snapshots.

The production serving workload ROADMAP targets is a *continuously
maintained* knowledge graph: edges arrive and disappear while templated
query traffic keeps hitting the warm cross-query caches built by the
perf layer.  This package is the update path that keeps search exact
without discarding state a mutation cannot have affected:

* :class:`DeltaJournal` / :class:`Delta` -- a bounded per-version log of
  what each mutation touched (node ids, tokens, types, relations,
  global-stat drift); ``KnowledgeGraph`` appends to it from every
  mutation method (:mod:`repro.dynamic.journal`).
* fine-grained invalidation -- ``repro.perf.CandidateCache`` diffs a
  cached entry's dependency footprint against the journal and keeps
  every entry the delta provably missed; ``ScoringFunction.refresh()``
  does the same for descriptor/score memos.
* snapshots -- :func:`save_snapshot` / :func:`load_snapshot`, a compact
  versioned binary format preserving ids, tombstones, all derived
  indexes, and the journal tail, so a serving process restarts warm
  (:mod:`repro.dynamic.snapshot`); surfaced as ``repro snapshot``.
* mutation streams -- :func:`apply_operations` replays a JSONL delta
  file onto a graph (:mod:`repro.dynamic.ops`); surfaced as
  ``repro apply-delta``.

Correctness contract (anchored by ``tests/test_dynamic_property.py``):
after any mutation sequence, search results are byte-identical to a
graph rebuilt from scratch by replaying the same sequence.
"""

from __future__ import annotations

from repro.dynamic.journal import Delta, DeltaJournal, DeltaSummary

__all__ = [
    "Delta",
    "DeltaJournal",
    "DeltaSummary",
    "apply_operation",
    "apply_operations",
    "load_any",
    "load_operations",
    "load_snapshot",
    "save_operations",
    "save_snapshot",
]

# Snapshot/ops are imported lazily (PEP 562): ``repro.graph`` imports
# the journal while its own module body is still executing, and the
# snapshot codec imports ``repro.graph`` back -- eager imports here
# would close that cycle.
_LAZY = {
    "save_snapshot": "repro.dynamic.snapshot",
    "load_snapshot": "repro.dynamic.snapshot",
    "load_any": "repro.dynamic.snapshot",
    "apply_operation": "repro.dynamic.ops",
    "apply_operations": "repro.dynamic.ops",
    "load_operations": "repro.dynamic.ops",
    "save_operations": "repro.dynamic.ops",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.dynamic' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
