"""Copy-on-write lazy views that make an ``RKGS2`` file a live graph.

:func:`open_graph` returns a :class:`MmapKnowledgeGraph` -- a real
:class:`~repro.graph.knowledge_graph.KnowledgeGraph` whose internal
containers read the mmap'd columns *on first touch* instead of being
deserialized up front.  Opening is O(sections): no node, edge, token or
adjacency row is materialized until something asks for it.

Mutations keep working through a copy-on-write overlay that falls out
of one invariant: every container caches the mutable object it returns
from ``__getitem__`` on first materialization.  The base
``KnowledgeGraph`` mutators always *read* a row before mutating it
(``self._adj[src].append(...)``, ``members.remove(node_id)``,
``postings.discard(node_id)``), so the first materialization always
captures pure frozen-base state and every later mutation lands in the
process-local cache -- the mapping itself is never written (it is
opened ``ACCESS_READ``; concurrent readers in other processes keep
seeing the frozen base).  Versioning, the delta journal and
``delta_since`` behave exactly as on an in-memory graph; ``repro
compact`` folds the overlay back into a fresh base file.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

try:  # pragma: no cover - import-shape compat
    from collections.abc import MutableMapping
except ImportError:  # pragma: no cover
    from collections import MutableMapping  # type: ignore

from repro.dynamic.journal import DeltaJournal
from repro.errors import GraphError
from repro.graph.knowledge_graph import EdgeData, KnowledgeGraph, NodeData
from repro.store.format import NO_ID, StoreReader


class _LazyNodes:
    """List-protocol view of the node table (slot -> NodeData | None)."""

    __slots__ = ("_reader", "_alive", "_names", "_kws", "_attrs", "_ntype",
                 "_types", "_base", "_cache", "_extra")

    def __init__(self, reader: StoreReader, type_keys: List[str]) -> None:
        slots = reader.meta.node_slots
        self._reader = reader
        self._alive = reader.section("node.alive")
        self._names = reader.strings("name", slots)
        self._kws = reader.strings("kw", slots)
        self._attrs = reader.strings("nattr", slots)
        self._ntype = reader.section("ntype")
        self._types = type_keys
        self._base = slots
        self._cache: Dict[int, Optional[NodeData]] = {}
        self._extra: List[Optional[NodeData]] = []

    def __len__(self) -> int:
        return self._base + len(self._extra)

    def is_live(self, i: int) -> bool:
        """Liveness without materializing the NodeData."""
        if i >= self._base:
            return self._extra[i - self._base] is not None
        if i in self._cache:
            return self._cache[i] is not None
        return bool(self._alive[i])

    def _materialize(self, i: int) -> Optional[NodeData]:
        if not self._alive[i]:
            return None
        tid = self._ntype[i]
        if tid == NO_ID:
            node_type = ""
        elif tid < len(self._types):
            node_type = self._types[tid]
        else:
            self._reader.corrupt(
                f"node {i} type id {tid} out of range", section="ntype")
        raw_kw = self._kws[i]
        keywords: Tuple[str, ...] = ()
        if raw_kw:
            keywords = tuple(self._reader.json_at("kw", i, raw_kw, list))
        raw_attrs = self._attrs[i]
        attrs = (self._reader.json_at("nattr", i, raw_attrs, dict)
                 if raw_attrs else {})
        return NodeData(name=self._names[i], type=node_type,
                        keywords=keywords, attrs=attrs)

    def __getitem__(self, i: int) -> Optional[NodeData]:
        if i >= self._base:
            return self._extra[i - self._base]
        if i < 0:
            raise IndexError(i)
        try:
            return self._cache[i]
        except KeyError:
            data = self._materialize(i)
            self._cache[i] = data
            return data

    def __setitem__(self, i: int, value: Optional[NodeData]) -> None:
        if i >= self._base:
            self._extra[i - self._base] = value
        else:
            self._cache[i] = value

    def append(self, value: Optional[NodeData]) -> None:
        self._extra.append(value)

    def __iter__(self) -> Iterator[Optional[NodeData]]:
        for i in range(len(self)):
            yield self[i]


class _LazyEdges:
    """List-protocol view of the edge table
    (slot -> ``(src, dst, EdgeData)`` | None)."""

    __slots__ = ("_reader", "_alive", "_src", "_dst", "_rel", "_attrs",
                 "_rels", "_base", "_cache", "_extra")

    def __init__(self, reader: StoreReader, rel_keys: List[str]) -> None:
        eslots = reader.meta.edge_slots
        self._reader = reader
        self._alive = reader.section("edge.alive")
        self._src = reader.section("edge.src")
        self._dst = reader.section("edge.dst")
        self._rel = reader.section("edge.rel")
        self._attrs = reader.strings("eattr", eslots)
        self._rels = rel_keys
        self._base = eslots
        self._cache: Dict[int, Optional[Tuple[int, int, EdgeData]]] = {}
        self._extra: List[Optional[Tuple[int, int, EdgeData]]] = []

    def __len__(self) -> int:
        return self._base + len(self._extra)

    def _materialize(self, i: int):
        if not self._alive[i]:
            return None
        rid = self._rel[i]
        if rid == NO_ID:
            relation = ""
        elif rid < len(self._rels):
            relation = self._rels[rid]
        else:
            self._reader.corrupt(
                f"edge {i} relation id {rid} out of range",
                section="edge.rel")
        raw = self._attrs[i]
        attrs = self._reader.json_at("eattr", i, raw, dict) if raw else {}
        return (self._src[i], self._dst[i],
                EdgeData(relation=relation, attrs=attrs))

    def __getitem__(self, i: int):
        if i >= self._base:
            return self._extra[i - self._base]
        if i < 0:
            raise IndexError(i)
        try:
            return self._cache[i]
        except KeyError:
            record = self._materialize(i)
            self._cache[i] = record
            return record

    def __setitem__(self, i: int, value) -> None:
        if i >= self._base:
            self._extra[i - self._base] = value
        else:
            self._cache[i] = value

    def append(self, value) -> None:
        self._extra.append(value)

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def triples(self) -> Iterator[Tuple[int, int, int]]:
        """Live ``(edge_id, src, dst)`` rows without building EdgeData."""
        for i in range(self._base):
            record = self._cache.get(i, _SENTINEL)
            if record is _SENTINEL:
                if self._alive[i]:
                    yield i, self._src[i], self._dst[i]
            elif record is not None:
                yield i, record[0], record[1]
        for j, record in enumerate(self._extra):
            if record is not None:
                yield self._base + j, record[0], record[1]


_SENTINEL = object()


class _LazyAdj:
    """One adjacency list family (undirected / out / in) over the CSR
    columns.  All three share the same views; the direction flag filters
    the row, reproducing the live graph's out/in ordering exactly (see
    :class:`repro.index.csr.CSRAdjacency`)."""

    __slots__ = ("_indptr", "_indices", "_dirs", "_eids", "_kind",
                 "_base", "_cache", "_extra")

    def __init__(self, reader: StoreReader, kind: str) -> None:
        self._indptr = reader.section("csr.indptr")
        self._indices = reader.section("csr.indices")
        self._dirs = reader.section("csr.dirs")
        self._eids = reader.section("csr.eids")
        self._kind = kind
        self._base = reader.meta.node_slots
        self._cache: Dict[int, List[Tuple[int, int]]] = {}
        self._extra: List[List[Tuple[int, int]]] = []

    def __len__(self) -> int:
        return self._base + len(self._extra)

    def _materialize(self, v: int) -> List[Tuple[int, int]]:
        start, end = self._indptr[v], self._indptr[v + 1]
        indices, eids = self._indices, self._eids
        if self._kind == "und":
            return [(indices[i], eids[i]) for i in range(start, end)]
        want = 1 if self._kind == "out" else 0
        dirs = self._dirs
        return [(indices[i], eids[i]) for i in range(start, end)
                if dirs[i] == want]

    def __getitem__(self, v: int) -> List[Tuple[int, int]]:
        if v >= self._base:
            return self._extra[v - self._base]
        if v < 0:
            raise IndexError(v)
        try:
            return self._cache[v]
        except KeyError:
            row = self._materialize(v)
            self._cache[v] = row
            return row

    def __setitem__(self, v: int, value: List[Tuple[int, int]]) -> None:
        if v >= self._base:
            self._extra[v - self._base] = value
        else:
            self._cache[v] = value

    def append(self, value: List[Tuple[int, int]]) -> None:
        self._extra.append(value)

    def __iter__(self) -> Iterator[List[Tuple[int, int]]]:
        for v in range(len(self)):
            yield self[v]

    def fast_len(self, v: int) -> int:
        """Row length without materializing the row (undirected only)."""
        if v >= self._base:
            return len(self._extra[v - self._base])
        row = self._cache.get(v)
        if row is not None:
            return len(row)
        return self._indptr[v + 1] - self._indptr[v]


class _LazyTokenIndex(MutableMapping):
    """``token -> set of node ids`` over vocab + postings columns.

    Key order is base vocabulary order (tokens deleted by mutations
    drop out) followed by overlay-added tokens in insertion order.  A
    deleted-then-re-added base token resumes its base position -- a
    deliberate, compaction-only divergence from dict semantics.
    """

    __slots__ = ("_reader", "_vocab", "_post_data", "_post_offs", "_idmap",
                 "_over", "_deleted", "_extra")

    def __init__(self, reader: StoreReader) -> None:
        count = reader.meta.counts["vocab"]
        self._reader = reader
        self._vocab = reader.strings("vocab", count)
        self._post_data = reader.section("post.data")
        self._post_offs = reader.section("post.offs")
        self._idmap: Optional[Dict[str, int]] = None
        #: materialized (or overlay-created) sets, mutated in place.
        self._over: Dict[str, Set[int]] = {}
        self._deleted: Set[str] = set()
        #: insertion-ordered registry of tokens absent from the base.
        self._extra: Dict[str, None] = {}

    def _ids(self) -> Dict[str, int]:
        idmap = self._idmap
        if idmap is None:
            vocab = self._vocab
            idmap = {vocab[i]: i for i in range(len(vocab))}
            if len(idmap) != len(vocab):
                self._reader.corrupt("duplicate vocabulary token",
                                     section="vocab.blob")
            self._idmap = idmap
        return idmap

    def _posting(self, tid: int) -> Set[int]:
        start, end = self._post_offs[tid], self._post_offs[tid + 1]
        if not 0 <= start <= end <= len(self._post_data):
            self._reader.corrupt(
                f"posting {tid} offsets [{start}, {end}) out of range",
                section="post.offs")
        members = set(self._post_data[start:end])
        slots = self._reader.meta.node_slots
        if members and max(members) >= slots:
            self._reader.corrupt(
                f"posting {tid} references node >= {slots}",
                section="post.data")
        return members

    def __getitem__(self, token: str) -> Set[int]:
        if token in self._deleted:
            raise KeyError(token)
        members = self._over.get(token)
        if members is not None:
            return members
        tid = self._ids().get(token)
        if tid is None:
            raise KeyError(token)
        members = self._posting(tid)
        self._over[token] = members
        return members

    def __setitem__(self, token: str, members: Set[int]) -> None:
        self._deleted.discard(token)
        self._over[token] = members
        if token not in self._ids():
            self._extra[token] = None

    def __delitem__(self, token: str) -> None:
        if token in self._extra:
            del self._extra[token]
            del self._over[token]
            return
        if token in self._deleted or token not in self._ids():
            raise KeyError(token)
        self._over.pop(token, None)
        self._deleted.add(token)

    def __iter__(self) -> Iterator[str]:
        vocab, deleted = self._vocab, self._deleted
        for i in range(len(vocab)):
            token = vocab[i]
            if token not in deleted:
                yield token
        yield from self._extra

    def __len__(self) -> int:
        return len(self._vocab) - len(self._deleted) + len(self._extra)

    def __contains__(self, token: object) -> bool:
        if token in self._deleted:
            return False
        return token in self._over or token in self._ids()

    def dfs(self) -> Iterator[Tuple[str, int]]:
        """``(token, document frequency)`` pairs in key order, reading
        posting *lengths* from the offsets instead of materializing
        member sets -- the IDF table builds from this in O(vocab)."""
        offs = self._post_offs
        ids = self._ids()
        for token in self:
            members = self._over.get(token)
            if members is not None:
                yield token, len(members)
            else:
                tid = ids[token]
                yield token, offs[tid + 1] - offs[tid]


class _LazyTypeIndex(MutableMapping):
    """``type -> member-id list`` over the type table.  Keys are eager
    (the table is small and ``types()`` order matters); member lists
    materialize on first access."""

    __slots__ = ("_reader", "_tmem_data", "_tmem_offs", "_slots", "_over")

    def __init__(self, reader: StoreReader, type_keys: List[str]) -> None:
        self._reader = reader
        self._tmem_data = reader.section("tmem.data")
        self._tmem_offs = reader.section("tmem.offs")
        #: key -> base table index (None for overlay-added types).
        self._slots: Dict[str, Optional[int]] = {
            t: i for i, t in enumerate(type_keys)
        }
        if len(self._slots) != len(type_keys):
            reader.corrupt("duplicate type key", section="type.blob")
        self._over: Dict[str, List[int]] = {}

    def __getitem__(self, t: str) -> List[int]:
        members = self._over.get(t)
        if members is not None:
            return members
        idx = self._slots[t]
        if idx is None:  # pragma: no cover - overlay types always in _over
            raise KeyError(t)
        start, end = self._tmem_offs[idx], self._tmem_offs[idx + 1]
        if not 0 <= start <= end <= len(self._tmem_data):
            self._reader.corrupt(
                f"type {t!r} member offsets [{start}, {end}) out of range",
                section="tmem.offs")
        members = list(self._tmem_data[start:end])
        slots = self._reader.meta.node_slots
        if members and max(members) >= slots:
            self._reader.corrupt(
                f"type {t!r} references node >= {slots}",
                section="tmem.data")
        self._over[t] = members
        return members

    def __setitem__(self, t: str, members: List[int]) -> None:
        if t not in self._slots:
            self._slots[t] = None
        self._over[t] = members

    def __delitem__(self, t: str) -> None:
        del self._slots[t]
        self._over.pop(t, None)

    def __iter__(self) -> Iterator[str]:
        return iter(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, t: object) -> bool:
        return t in self._slots

    def has_members(self, t: str) -> bool:
        """Truthiness of the member list without materializing it."""
        members = self._over.get(t)
        if members is not None:
            return bool(members)
        idx = self._slots[t]
        if idx is None:  # pragma: no cover
            return False
        return self._tmem_offs[idx + 1] > self._tmem_offs[idx]


class MmapKnowledgeGraph(KnowledgeGraph):
    """A ``KnowledgeGraph`` whose base state lives in an mmap'd RKGS2
    file; see the module docstring for the overlay contract.  Construct
    via :meth:`KnowledgeGraph.open_mmap` / :func:`open_graph`."""

    def __init__(self, *_args, **_kwargs) -> None:
        raise TypeError(
            "MmapKnowledgeGraph cannot be constructed directly; "
            "use KnowledgeGraph.open_mmap(path)")

    # -- overridden access paths (avoid full materialization) ----------
    def nodes(self) -> Iterator[int]:
        nodes = self._nodes
        return (i for i in range(len(nodes)) if nodes.is_live(i))

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        return self._edges.triples()

    def degree(self, node_id: int) -> int:
        return self._adj.fast_len(self._check_node(node_id))

    def _check_node(self, node_id: int) -> int:
        nodes = self._nodes
        if not (isinstance(node_id, int) and 0 <= node_id < len(nodes)) \
                or not nodes.is_live(node_id):
            raise GraphError(f"unknown node id {node_id}")
        return node_id

    def __contains__(self, node_id: object) -> bool:
        nodes = self._nodes
        return (isinstance(node_id, int) and 0 <= node_id < len(nodes)
                and nodes.is_live(node_id))

    def types(self) -> List[str]:
        index = self._type_index
        return [t for t in index if index.has_members(t)]

    def nodes_of_subtype(self, type: str):
        # Base implementation walks _type_index.items(), which would
        # materialize every member list; probe the ontology per key and
        # only materialize matching types.
        if not type:
            return frozenset()
        closure = self._subtype_closure.get(type)
        if closure is None:
            from repro.similarity import ontology

            index = self._type_index
            ids: Set[int] = set(index.get(type, ()))
            for type_name in index:
                if type_name != type and ontology.is_subtype(type_name, type):
                    ids.update(index[type_name])
            closure = frozenset(ids)
            self._subtype_closure[type] = closure
        return closure

    def token_dfs(self) -> Iterator[Tuple[str, int]]:
        return self._token_index.dfs()

    # -- store plumbing -------------------------------------------------
    @property
    def store_path(self) -> str:
        """Path of the backing RKGS2 file (workers re-open it)."""
        return self._store.path

    def close(self) -> None:
        """Release the mapping (views already handed out keep it alive
        until dropped; see :meth:`StoreReader.close`)."""
        self._store.close()

    def __repr__(self) -> str:
        label = self.name or "KnowledgeGraph"
        return (f"<{label} (mmap {self._store.path}): "
                f"|V|={self.num_nodes} |E|={self.num_edges}>")


def open_graph(path, *, verify: bool = False) -> MmapKnowledgeGraph:
    """Open *path* (an ``RKGS2`` store) as a live graph, zero-copy.

    Args:
        path: file written by :func:`repro.store.write_store`.
        verify: force a CRC check of every section up front (defaults
            to lazy per-section verification on first touch).
    """
    from repro.textutil import clear_token_memo

    reader = StoreReader(path, verify=verify)
    try:
        meta = reader.meta
        type_keys = reader.strings("type", meta.counts["types"]).materialize()
        rel_keys = reader.strings("rel", meta.counts["rels"]).materialize()
        graph = MmapKnowledgeGraph.__new__(MmapKnowledgeGraph)
        KnowledgeGraph.__init__(graph, name=meta.name,
                                directed=meta.directed,
                                journal_limit=meta.journal_limit)
        graph._nodes = _LazyNodes(reader, type_keys)
        graph._edges = _LazyEdges(reader, rel_keys)
        graph._adj = _LazyAdj(reader, "und")
        graph._out = _LazyAdj(reader, "out")
        graph._in = _LazyAdj(reader, "in")
        graph._token_index = _LazyTokenIndex(reader)
        graph._type_index = _LazyTypeIndex(reader, type_keys)
        graph._relations = dict(meta.relations)
        graph._removed_nodes = meta.removed_nodes
        graph._removed_edges = meta.removed_edges
        graph._max_degree = meta.max_degree
        graph._max_degree_dirty = False
        graph.version = meta.version
        graph.journal = DeltaJournal(limit=meta.journal_limit)
        graph.journal.replace(meta.journal_entries,
                              latest=meta.journal_latest)
        graph._store = reader
        #: The frozen base version: concurrent readers of the same file
        #: see exactly this state regardless of overlay mutations here.
        graph.base_version = meta.version
    except BaseException:
        reader.close()
        raise
    clear_token_memo()
    return graph
