"""``repro.store``: the mmap-able zero-copy graph store (``RKGS2``).

Write with :func:`write_store` (or ``repro compact``), open with
:meth:`KnowledgeGraph.open_mmap` / :func:`open_graph`, and attach the
index kernels with :func:`attach_mmap_index` /
:meth:`GraphIndex.attach_mmap`.  See :mod:`repro.store.format` for the
on-disk layout and :mod:`repro.store.lazygraph` for the copy-on-write
overlay semantics.
"""

from repro.store.attach import (
    MmapGraphIndex,
    MmapSemanticTier,
    attach_mmap_index,
    attach_mmap_semantic,
)
from repro.store.format import (
    MAGIC2,
    PAGE_SIZE,
    STORE_VERSION,
    StoreReader,
    write_store,
)
from repro.store.lazygraph import MmapKnowledgeGraph, open_graph

__all__ = [
    "MAGIC2",
    "PAGE_SIZE",
    "STORE_VERSION",
    "MmapGraphIndex",
    "MmapKnowledgeGraph",
    "MmapSemanticTier",
    "StoreReader",
    "attach_mmap_index",
    "attach_mmap_semantic",
    "open_graph",
    "write_store",
]
