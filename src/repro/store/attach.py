"""Attach a read-only :class:`~repro.index.GraphIndex` to an RKGS2 file.

The disk twin of :func:`repro.index.shm.attach_shared_index`: instead
of a ``/dev/shm`` segment exported per engine, every process -- shard
fork workers, serve pool workers, one-shot CLI runs -- maps the same
store file, so the numeric columns occupy one set of OS page-cache
pages machine-wide and attaching needs no owner, no export step and no
unlink hygiene.  The attached index serves byte-identical candidates
to one built in memory (same values, same orders) and refuses
maintenance past its pinned version.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ann.semantic import MODES as ANN_MODES
from repro.ann.semantic import SemanticTier
from repro.index.csr import CSRAdjacency
from repro.index.features import NodeFeatures
from repro.index.graph_index import MODES, GraphIndex
from repro.index.postings import PostingIndex
from repro.index.shm import _FEATURE_COLUMNS
from repro.index.vocab import Vocabulary
from repro.store.format import StoreReader
from repro.store.lazygraph import MmapKnowledgeGraph

__all__ = [
    "MmapGraphIndex",
    "MmapSemanticTier",
    "attach_mmap_index",
    "attach_mmap_semantic",
]


class MmapGraphIndex(GraphIndex):
    """A read-only :class:`GraphIndex` whose columns are mmap views.

    Maintenance is disabled exactly as for the shared-memory attach:
    the graph version is pinned at open; past it, callers re-compact
    (``repro compact``) and re-attach instead of refreshing in place.
    """

    def __init__(self) -> None:  # constructed via attach_mmap_index only
        raise TypeError("use repro.store.attach_mmap_index")

    def refresh(self) -> bool:
        if self.graph.version == self._version:
            return False
        raise RuntimeError(
            "mmap-attached index cannot refresh past graph version "
            f"{self._version} (graph is at {self.graph.version}); "
            "run `repro compact` and re-attach instead"
        )

    def detach(self) -> None:
        """Drop every view (and the reader, when this attach opened it).

        Mirrors :meth:`repro.index.shm.AttachedGraphIndex.detach`:
        callers must drop retained ``NodeFootprint`` objects first.
        """
        self.postings.postings = []
        self.postings.alive = bytearray()
        self._plans = {}
        self.vocab.idf = None
        self.csr.indptr = self.csr.indices = self.csr.rels = None
        self.csr.dirs = None
        for attr, _code in _FEATURE_COLUMNS:
            setattr(self.features, attr, None)
        reader = self._reader
        if reader is not None:
            self._reader = None
            if self._owns_reader:
                reader.close()

    @property
    def store_path(self) -> Optional[str]:
        """Backing store file; shard/serve workers re-attach via it."""
        reader = self._reader
        return None if reader is None else reader.path


def attach_mmap_index(
    source: Union[str, "StoreReader", MmapKnowledgeGraph],
    graph,
    mode: str = "auto",
) -> MmapGraphIndex:
    """Attach the index columns of an RKGS2 store to *graph*.

    Args:
        source: a store path, an open :class:`StoreReader`, or an
            :class:`MmapKnowledgeGraph` (whose own reader is shared --
            graph and index then read the same mapping).
        graph: the graph the index will generate candidates for.  Must
            match the store's graph (same name, node-slot count) at the
            exact version the store was compacted from; a fork-inherited
            or freshly opened graph of the same file is the normal case.
        mode: ``use_index`` routing mode for the attached index.
    """
    if mode not in MODES:
        raise ValueError(
            f"use_index mode must be one of {MODES}, got {mode!r}")
    owns = False
    if isinstance(source, MmapKnowledgeGraph):
        reader = source._store
    elif isinstance(source, StoreReader):
        reader = source
    else:
        reader = StoreReader(source)
        owns = True
    try:
        meta = reader.meta
        if getattr(graph, "name", None) != meta.name:
            raise ValueError(
                f"store {reader.path} holds graph {meta.name!r}, "
                f"not {graph.name!r}")
        if graph.version != meta.version:
            raise ValueError(
                f"store {reader.path} was compacted at graph version "
                f"{meta.version}, but the graph is at {graph.version}")
        if graph.num_node_slots != meta.node_slots:
            raise ValueError(
                f"store {reader.path} lays out {meta.node_slots} node "
                f"slot(s), but the graph has {graph.num_node_slots}")

        counts = meta.counts
        vocab = Vocabulary()
        vocab.strings = reader.strings("vocab", counts["vocab"]).materialize()
        vocab._ids = {token: tid for tid, token in enumerate(vocab.strings)}
        vocab.idf = reader.section("idf")
        vocab.idf_stale = False

        postings = PostingIndex()
        data = reader.section("post.data")
        offsets = reader.section("post.offs")
        postings.postings = [
            data[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
        ]
        postings.alive = reader.section("node.alive")
        postings.live_nodes = meta.node_slots - meta.removed_nodes
        postings.dead_nodes = 0

        csr = CSRAdjacency()
        csr.indptr = reader.section("csr.indptr")
        csr.indices = reader.section("csr.indices")
        csr.rels = reader.section("csr.rels")
        csr.dirs = reader.section("csr.dirs")
        csr.rel_strings = reader.strings("rel", counts["rels"]).materialize()
        csr.rel_ids = {rel: rid for rid, rel in enumerate(csr.rel_strings)}

        features = NodeFeatures()
        for attr, _code in _FEATURE_COLUMNS:
            setattr(features, attr, reader.section(f"feat.{attr}"))
        features.pool_strings = reader.strings(
            "pool", counts["pool"]).materialize()
        features.pool = {v: i for i, v in enumerate(features.pool_strings)}
    except BaseException:
        if owns:
            reader.close()
        raise

    index = object.__new__(MmapGraphIndex)
    index.graph = graph
    index.mode = mode
    index.vocab = vocab
    index.postings = postings
    index.csr = csr
    index.features = features
    index.postings_scanned = 0
    index.pruned = 0
    index.evaluated = 0
    index._plans = {}
    index._version = meta.version
    index._reader = reader
    index._owns_reader = owns
    return index


class MmapSemanticTier(SemanticTier):
    """A read-only :class:`SemanticTier` whose columns are mmap views.

    Same contract as :class:`MmapGraphIndex`: the embedding and
    signature columns come straight out of the store file (zero copy),
    the version is pinned at open, and refresh past it demands a
    re-compact + re-attach.  Probes are bit-identical to an in-memory
    tier because both sides index float32 values -- the store column is
    the in-memory ``array('f')`` laid out verbatim.
    """

    def __init__(self) -> None:  # constructed via attach_mmap_semantic only
        raise TypeError("use repro.store.attach_mmap_semantic")

    def ensure_built(self) -> None:
        pass  # columns are the store's; there is nothing to build

    def refresh(self) -> bool:
        if self.graph.version == self._version:
            return False
        raise RuntimeError(
            "mmap-attached semantic tier cannot refresh past graph "
            f"version {self._version} (graph is at {self.graph.version}); "
            "run `repro compact` and re-attach instead"
        )

    def detach(self) -> None:
        """Drop every view (and the reader, when this attach opened it)."""
        self.vecs = ()
        self.sigs = ()
        self.alive = b""
        self.index.bind((), (), b"", 0)
        reader = self._reader
        if reader is not None:
            self._reader = None
            if self._owns_reader:
                reader.close()

    @property
    def store_path(self) -> Optional[str]:
        """Backing store file; shard/serve workers re-attach via it."""
        reader = self._reader
        return None if reader is None else reader.path


def attach_mmap_semantic(
    source: Union[str, "StoreReader", MmapKnowledgeGraph],
    graph,
    mode: str = "auto",
    **options,
) -> MmapSemanticTier:
    """Attach the semantic-tier columns of an RKGS2 store to *graph*.

    Args:
        source: a store path, an open :class:`StoreReader`, or an
            :class:`MmapKnowledgeGraph` (reader shared with the graph).
        graph: the graph the tier will generate candidates for; must
            match the store's graph exactly as for
            :func:`attach_mmap_index`.
        mode: ``use_semantic`` engagement mode for the attached tier.
        options: runtime knobs forwarded to :class:`SemanticTier`
            (``probe_limit``, ``rerank_percentile``, ``time_bound_ms``).
            Structural parameters (dim, banding, seed) always come from
            the store's meta section -- they determined the columns.
    """
    if mode not in ANN_MODES:
        raise ValueError(
            f"use_semantic mode must be one of {ANN_MODES}, got {mode!r}")
    owns = False
    if isinstance(source, MmapKnowledgeGraph):
        reader = source._store
    elif isinstance(source, StoreReader):
        reader = source
    else:
        reader = StoreReader(source)
        owns = True
    try:
        meta = reader.meta
        if getattr(graph, "name", None) != meta.name:
            raise ValueError(
                f"store {reader.path} holds graph {meta.name!r}, "
                f"not {graph.name!r}")
        if graph.version != meta.version:
            raise ValueError(
                f"store {reader.path} was compacted at graph version "
                f"{meta.version}, but the graph is at {graph.version}")
        if graph.num_node_slots != meta.node_slots:
            raise ValueError(
                f"store {reader.path} lays out {meta.node_slots} node "
                f"slot(s), but the graph has {graph.num_node_slots}")
        counts = meta.counts
        vecs = reader.section("ann.vecs")
        sigs = reader.section("ann.sigs")
        alive = reader.section("node.alive")
    except BaseException:
        if owns:
            reader.close()
        raise

    tier = object.__new__(MmapSemanticTier)
    SemanticTier.__init__(
        tier, graph, mode=mode, dim=counts["ann_dim"],
        bands=counts["ann_bands"], band_bits=counts["ann_band_bits"],
        seed=counts["ann_seed"], **options)
    tier.vecs = vecs
    tier.sigs = sigs
    tier.alive = alive
    tier.index.bind(vecs, sigs, alive, meta.node_slots)
    tier._built = True
    tier._version = meta.version
    tier._reader = reader
    tier._owns_reader = owns
    return tier
