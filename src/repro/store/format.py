"""``RKGS2``: the mmap-able columnar store format.

The ``RKGS`` snapshot (:mod:`repro.dynamic.snapshot`) is a *serialized*
graph: loading it deserializes every node, edge and index entry into
Python objects, so cold-start is O(graph) and every process pays for its
own copy.  ``RKGS2`` instead lays the graph and its :mod:`repro.index`
kernels out as flat, page-aligned, CRC-guarded columns that are read
*in place* through one ``mmap``::

    offset 0      fixed 64-byte header
                  magic b"RKGS2\\0", format version, page size,
                  section count, directory offset/size/CRC, header CRC
    offset 4096   sections, each page-aligned, CRC-32 guarded
    tail          section directory (fixed 48-byte entries)

Sections (``<name> [typecode]``; ``.blob``/``.offs`` pairs are UTF-8
string tables -- string *i* is ``blob[offs[i]:offs[i+1]]``)::

    meta                varint-encoded scalars + relation refcounts +
                        journal tail (reuses the hardened snapshot codec)
    vocab.blob/offs     interned token spellings, dense-id order
    idf           [d]   per-token IDF (computed at write time)
    post.data     [I]   concatenated posting lists (ascending node ids)
    post.offs     [Q]   posting list i = data[offs[i]:offs[i+1]]
    node.alive    [B]   1 per live node slot, 0 per tombstone
    name/kw/nattr       per-slot name, keywords-JSON, attrs-JSON tables
    ntype         [I]   per-slot index into type.blob (NO_ID = untyped)
    type.blob/offs      type-index keys, insertion order
    tmem.data     [I]   concatenated type-index member lists
    tmem.offs     [Q]   members of type i = data[offs[i]:offs[i+1]]
    edge.alive    [B]   per edge slot
    edge.src/dst  [I]   endpoints per edge slot
    edge.rel      [I]   index into rel.blob (NO_ID = tombstone/unlabeled)
    eattr.blob/offs     per-slot edge attrs-JSON
    rel.blob/offs       relation label pool (CSR + edge table share it)
    csr.indptr    [I]   CSR row pointers (num_node_slots + 1)
    csr.indices   [I]   neighbor node ids, ``graph.neighbors(v)`` order
    csr.rels      [I]   relation-label ids
    csr.dirs      [B]   1 = edge leaves v (dir filtering reproduces the
                        out/in neighbor lists)
    csr.eids      [I]   edge ids (the live adjacency stores
                        ``(neighbor, edge_id)`` tuples; CSR alone drops
                        the edge id, so readers need this column back)
    feat.<name>         the 14 :class:`~repro.index.features.NodeFeatures`
                        columns
    pool.blob/offs      features string pool (types, initials)

Integrity: the header and directory are verified *eagerly* on open
(O(1), keeps cold-open in the milliseconds); every section carries a
CRC-32 verified on first access (and all at once via
:meth:`StoreReader.verify`).  Every failure is a typed
:class:`~repro.errors.SnapshotCorruptionError` carrying the section
name and byte offset -- the corruption suite fuzzes truncations and
byte flips over the whole file to hold that line.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from array import array
from typing import Dict, List, Optional, Tuple

from repro.dynamic.journal import Delta
from repro.dynamic.snapshot import _Reader, _Writer
from repro.errors import DatasetError, SnapshotCorruptionError
from repro.index.features import NodeFeatures
from repro.index.postings import PostingIndex
from repro.index.shm import _FEATURE_COLUMNS
from repro.index.vocab import Vocabulary

#: Distinguishes RKGS2 from RKGS v1: both start ``RKGS``, but v1's next
#: byte is the format version (0x01), never ASCII ``"2"``.
MAGIC2 = b"RKGS2\x00"
#: Format 2 adds the semantic-tier columns (``ann.vecs`` / ``ann.sigs``)
#: and their banding parameters in the meta counts.
STORE_VERSION = 2
PAGE_SIZE = 4096

#: ``0xFFFFFFFF`` -- "no entry" in u32 id columns (untyped node,
#: tombstoned edge relation).
NO_ID = 0xFFFFFFFF

# magic, format version, page size, section count, directory offset,
# directory nbytes, directory CRC, reserved; the final u32 is the CRC-32
# of the preceding 60 bytes.
_HEADER_BASE = struct.Struct("<6sHIIQQI24x")
_HEADER_CRC = struct.Struct("<I")
HEADER_SIZE = _HEADER_BASE.size + _HEADER_CRC.size  # 64

# name (UTF-8, NUL padded), offset, nbytes, payload CRC-32, typecode
# (ord of the array typecode, 0 = raw bytes).
_ENTRY = struct.Struct("<24sQQII")

_CODES = frozenset(b"BIQdf")


def _align(offset: int) -> int:
    return (offset + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


def _crc(payload) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def _attrs_json(mapping: dict) -> str:
    """Canonical attrs encoding -- matches the RKGS v1 snapshot codec."""
    if not mapping:
        return ""
    return json.dumps(mapping, sort_keys=True, separators=(",", ":"))


class _Blob:
    """Builder for a ``.blob``/``.offs`` string-table section pair."""

    __slots__ = ("blob", "offs")

    def __init__(self) -> None:
        self.blob = bytearray()
        self.offs = array("Q", [0])

    def add(self, value: str) -> None:
        self.blob += value.encode("utf-8")
        self.offs.append(len(self.blob))

    def sections(self, prefix: str) -> List[Tuple[str, int, bytes]]:
        return [(f"{prefix}.blob", 0, bytes(self.blob)),
                (f"{prefix}.offs", ord("Q"), self.offs.tobytes())]


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def _encode_meta(graph, counts: Dict[str, int]) -> bytes:
    writer = _Writer()
    writer.string(graph.name)
    writer.u8(1 if graph.directed else 0)
    writer.varint(graph.version)
    writer.varint(graph.num_node_slots)
    writer.varint(graph.num_edge_slots)
    writer.varint(graph._removed_nodes)
    writer.varint(graph._removed_edges)
    writer.varint(graph.max_degree)
    for key in ("vocab", "post", "types", "tmem", "rels", "csr", "pool",
                "ann_dim", "ann_bands", "ann_band_bits", "ann_seed"):
        writer.varint(counts[key])
    writer.varint(len(graph._relations))
    for relation in sorted(graph._relations):
        writer.string(relation)
        writer.varint(graph._relations[relation])
    writer.varint(graph.journal.limit)
    writer.varint(graph.journal.latest_version)
    entries = graph.journal.entries()
    writer.varint(len(entries))
    for delta in entries:
        writer.varint(delta.version)
        writer.string(delta.kind)
        writer.u8(1 if delta.stats_changed else 0)
        writer.id_set(delta.nodes)
        writer.string_set(delta.tokens)
        writer.string_set(delta.types)
        writer.string_set(delta.relations)
    return writer.getvalue()


def _build_sections(graph) -> List[Tuple[str, int, bytes]]:
    """All section payloads as ``(name, typecode-ord, payload)`` rows."""
    from repro.similarity.descriptors import CorpusContext

    slots = graph.num_node_slots
    eslots = graph.num_edge_slots

    # Index kernels, rebuilt from the live graph: vocabulary ids follow
    # the token-index iteration order, postings come out sorted, feature
    # rows mirror Descriptor derivations.  IDF is resolved at write time
    # so attached readers never need to write it.
    vocab = Vocabulary()
    postings = PostingIndex.build(graph, vocab)
    features = NodeFeatures.build(graph, vocab)
    vocab.refresh_idf(CorpusContext.from_graph(graph))

    post_offs = array("Q", [0])
    for arr in postings.postings:
        post_offs.append(post_offs[-1] + len(arr))
    post_data = b"".join(arr.tobytes() for arr in postings.postings)

    vocab_blob = _Blob()
    for token in vocab.strings:
        vocab_blob.add(token)

    # CSR adjacency *with edge ids*: the in-memory CSRAdjacency drops
    # them, but a reader reconstructing ``graph.neighbors(v)`` needs the
    # ``(neighbor, edge_id)`` tuples back.  Row order equals the live
    # adjacency order; the direction flag recovers the out/in lists.
    rel_ids: Dict[str, int] = {}
    rel_blob = _Blob()

    def rel_id(label: str) -> int:
        rid = rel_ids.get(label)
        if rid is None:
            rid = len(rel_ids)
            rel_ids[label] = rid
            rel_blob.add(label)
        return rid

    indptr = array("I", bytes(4 * (slots + 1)))
    indices = array("I")
    csr_rels = array("I")
    csr_dirs = array("B")
    csr_eids = array("I")
    edges = graph._edges
    adj = graph._adj
    for v in range(slots):
        for nbr, eid in adj[v]:
            record = edges[eid]
            indices.append(nbr)
            csr_eids.append(eid)
            csr_rels.append(rel_id(record[2].relation))
            csr_dirs.append(1 if record[0] == v else 0)
        indptr[v + 1] = len(indices)

    # Node table.  The full type-index key list (insertion order,
    # including keys whose members all died -- ``types()`` order depends
    # on it) doubles as the node-type pool.
    type_keys = list(graph._type_index.keys())
    type_pos = {t: i for i, t in enumerate(type_keys)}
    node_alive = bytearray(slots)
    names = _Blob()
    kws = _Blob()
    nattrs = _Blob()
    ntype = array("I")
    nodes = graph._nodes
    for i in range(slots):
        data = nodes[i]
        if data is None:
            names.add("")
            kws.add("")
            nattrs.add("")
            ntype.append(NO_ID)
            continue
        node_alive[i] = 1
        names.add(data.name)
        kws.add(json.dumps(list(data.keywords), separators=(",", ":"))
                if data.keywords else "")
        nattrs.add(_attrs_json(data.attrs))
        if data.type:
            pos = type_pos.get(data.type)
            if pos is None:  # pragma: no cover - index covers live types
                pos = len(type_keys)
                type_pos[data.type] = pos
                type_keys.append(data.type)
            ntype.append(pos)
        else:
            ntype.append(NO_ID)

    type_blob = _Blob()
    tmem_data = array("I")
    tmem_offs = array("Q", [0])
    for t in type_keys:
        type_blob.add(t)
        tmem_data.extend(graph._type_index.get(t, ()))
        tmem_offs.append(len(tmem_data))

    # Edge table.
    edge_alive = bytearray(eslots)
    edge_src = array("I", bytes(4 * eslots))
    edge_dst = array("I", bytes(4 * eslots))
    edge_rel = array("I")
    eattrs = _Blob()
    for eid in range(eslots):
        record = edges[eid]
        if record is None:
            edge_rel.append(NO_ID)
            eattrs.add("")
            continue
        src, dst, edata = record
        edge_alive[eid] = 1
        edge_src[eid] = src
        edge_dst[eid] = dst
        edge_rel.append(rel_id(edata.relation))
        eattrs.add(_attrs_json(edata.attrs))

    pool_blob = _Blob()
    for value in features.pool_strings:
        pool_blob.add(value)

    # Semantic-tier columns: per-slot embedding vectors and LSH band
    # signatures, laid out exactly as repro.ann builds them in memory,
    # so an mmap-attached tier probes bit-identically to a built one.
    from repro import ann as ann_mod

    ann_vecs, ann_sigs, _ann_alive = ann_mod.build_columns(graph)

    counts = {
        "vocab": len(vocab), "post": post_offs[-1],
        "types": len(type_keys), "tmem": len(tmem_data),
        "rels": len(rel_ids), "csr": len(indices),
        "pool": len(features.pool_strings),
        "ann_dim": ann_mod.DEFAULT_DIM, "ann_bands": ann_mod.DEFAULT_BANDS,
        "ann_band_bits": ann_mod.DEFAULT_BAND_BITS,
        "ann_seed": ann_mod.DEFAULT_SEED,
    }

    sections: List[Tuple[str, int, bytes]] = [
        ("meta", 0, _encode_meta(graph, counts)),
    ]
    sections += vocab_blob.sections("vocab")
    sections.append(("idf", ord("d"), vocab.idf.tobytes()))
    sections.append(("post.data", ord("I"), post_data))
    sections.append(("post.offs", ord("Q"), post_offs.tobytes()))
    sections.append(("node.alive", ord("B"), bytes(node_alive)))
    sections += names.sections("name")
    sections += kws.sections("kw")
    sections += nattrs.sections("nattr")
    sections.append(("ntype", ord("I"), ntype.tobytes()))
    sections += type_blob.sections("type")
    sections.append(("tmem.data", ord("I"), tmem_data.tobytes()))
    sections.append(("tmem.offs", ord("Q"), tmem_offs.tobytes()))
    sections.append(("edge.alive", ord("B"), bytes(edge_alive)))
    sections.append(("edge.src", ord("I"), edge_src.tobytes()))
    sections.append(("edge.dst", ord("I"), edge_dst.tobytes()))
    sections.append(("edge.rel", ord("I"), edge_rel.tobytes()))
    sections += eattrs.sections("eattr")
    sections += rel_blob.sections("rel")
    sections.append(("csr.indptr", ord("I"), indptr.tobytes()))
    sections.append(("csr.indices", ord("I"), indices.tobytes()))
    sections.append(("csr.rels", ord("I"), csr_rels.tobytes()))
    sections.append(("csr.dirs", ord("B"), csr_dirs.tobytes()))
    sections.append(("csr.eids", ord("I"), csr_eids.tobytes()))
    for attr, code in _FEATURE_COLUMNS:
        sections.append(
            (f"feat.{attr}", ord(code), getattr(features, attr).tobytes())
        )
    sections += pool_blob.sections("pool")
    sections.append(("ann.vecs", ord("f"), ann_vecs.tobytes()))
    sections.append(("ann.sigs", ord("Q"), ann_sigs.tobytes()))
    return sections


def write_store(graph, path) -> int:
    """Write *graph* (any :class:`KnowledgeGraph`, including an
    mmap-backed one with a mutation overlay) to *path* as ``RKGS2``.

    Compaction folds any copy-on-write overlay back into the frozen
    base: the writer walks the graph through its public structures, so
    overlay mutations are simply part of what gets laid out.  Returns
    the file size in bytes.
    """
    graph._resolve_max_degree()
    sections = _build_sections(graph)
    entries = []
    offset = PAGE_SIZE
    for name, code, payload in sections:
        offset = _align(offset)
        entries.append((name, offset, len(payload), _crc(payload), code))
        offset += len(payload)
    dir_off = _align(offset)
    dir_bytes = b"".join(
        _ENTRY.pack(name.encode("utf-8"), off, nbytes, crc, code)
        for name, off, nbytes, crc, code in entries
    )
    base = _HEADER_BASE.pack(
        MAGIC2, STORE_VERSION, PAGE_SIZE, len(entries),
        dir_off, len(dir_bytes), _crc(dir_bytes),
    )
    header = base + _HEADER_CRC.pack(_crc(base))
    with open(path, "wb") as handle:
        handle.write(header)
        for (name, off, _nbytes, _c, _t), (_n, _code, payload) in zip(
            entries, sections
        ):
            handle.seek(off)
            handle.write(payload)
        handle.seek(dir_off)
        handle.write(dir_bytes)
        handle.flush()
        total = handle.tell()
    return total


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
class StoreMeta:
    """Decoded ``meta`` section (scalars, relation refcounts, journal)."""

    __slots__ = (
        "name", "directed", "version", "node_slots", "edge_slots",
        "removed_nodes", "removed_edges", "max_degree", "counts",
        "relations", "journal_limit", "journal_latest", "journal_entries",
    )


def _decode_meta(payload: bytes) -> StoreMeta:
    reader = _Reader(payload)
    meta = StoreMeta()
    meta.name = reader.string()
    meta.directed = bool(reader.u8())
    meta.version = reader.varint()
    meta.node_slots = reader.varint()
    meta.edge_slots = reader.varint()
    meta.removed_nodes = reader.varint()
    meta.removed_edges = reader.varint()
    meta.max_degree = reader.varint()
    meta.counts = {
        key: reader.varint()
        for key in ("vocab", "post", "types", "tmem", "rels", "csr", "pool",
                    "ann_dim", "ann_bands", "ann_band_bits", "ann_seed")
    }
    meta.relations = {}
    for _ in range(reader.count()):
        relation = reader.string()
        meta.relations[relation] = reader.varint()
    meta.journal_limit = reader.varint()
    meta.journal_latest = reader.varint()
    entries: List[Delta] = []
    for _ in range(reader.count()):
        version = reader.varint()
        kind = reader.string()
        stats_changed = bool(reader.u8())
        entries.append(Delta(
            version, kind,
            nodes=frozenset(reader.id_set()),
            tokens=frozenset(reader.string_set()),
            types=frozenset(reader.string_set()),
            relations=frozenset(reader.string_set()),
            stats_changed=stats_changed,
        ))
    meta.journal_entries = entries
    if not reader.exhausted:
        raise SnapshotCorruptionError(
            "corrupt store: trailing bytes after meta",
            offset=reader.offset)
    if meta.journal_latest != meta.version:
        raise SnapshotCorruptionError(
            f"corrupt store: journal latest {meta.journal_latest} "
            f"!= graph version {meta.version}", offset=reader.offset)
    if meta.removed_nodes > meta.node_slots \
            or meta.removed_edges > meta.edge_slots:
        raise SnapshotCorruptionError(
            "corrupt store: removal count exceeds slot count",
            offset=reader.offset)
    return meta


class StringTable:
    """Lazy string accessor over a ``.blob``/``.offs`` section pair."""

    __slots__ = ("_reader", "_prefix", "_blob", "_offs", "_cache")

    def __init__(self, reader: "StoreReader", prefix: str,
                 count: Optional[int] = None) -> None:
        self._reader = reader
        self._prefix = prefix
        self._blob = reader.section(f"{prefix}.blob")
        self._offs = reader.section(f"{prefix}.offs")
        if count is not None and len(self._offs) != count + 1:
            reader.corrupt(
                f"expected {count + 1} offsets, found {len(self._offs)}",
                section=f"{prefix}.offs")
        self._cache: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._offs) - 1

    def __getitem__(self, i: int) -> str:
        hit = self._cache.get(i)
        if hit is not None:
            return hit
        if not 0 <= i < len(self._offs) - 1:
            raise IndexError(i)
        start, end = self._offs[i], self._offs[i + 1]
        if not 0 <= start <= end <= len(self._blob):
            self._reader.corrupt(
                f"string {i} offsets [{start}, {end}) out of range",
                section=f"{self._prefix}.offs")
        try:
            value = bytes(self._blob[start:end]).decode("utf-8")
        except UnicodeDecodeError as exc:
            self._reader.corrupt(f"invalid UTF-8 in string {i}: {exc}",
                                 section=f"{self._prefix}.blob")
        self._cache[i] = value
        return value

    def materialize(self) -> List[str]:
        return [self[i] for i in range(len(self))]


class StoreReader:
    """One open ``RKGS2`` file: mmap + validated section directory.

    The header, directory and ``meta`` section are verified eagerly
    (cheap); data-section CRCs verify lazily on first
    :meth:`section` access, or all at once via :meth:`verify`.
    """

    def __init__(self, path, *, verify: bool = False) -> None:
        self.path = str(path)
        try:
            self._file = open(path, "rb")
        except FileNotFoundError:
            raise DatasetError(f"graph file not found: {path}") from None
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < HEADER_SIZE:
                self.corrupt(f"truncated header ({size} byte(s))",
                             section="header", offset=size)
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except (DatasetError, OSError, ValueError):
            self._file.close()
            if isinstance(getattr(self, "_mmap", None), mmap.mmap):
                self._mmap.close()
            raise
        self._size = size
        self._base = memoryview(self._mmap).toreadonly()
        self._views: Dict[str, memoryview] = {}
        self._closed = False
        try:
            self._parse(verify)
        except BaseException:
            self.close()
            raise

    # -- setup ----------------------------------------------------------
    def _parse(self, verify: bool) -> None:
        raw = self._base
        header = bytes(raw[:HEADER_SIZE])
        if not header.startswith(MAGIC2):
            raise DatasetError(f"{self.path}: not an RKGS2 store (bad magic)")
        if _crc(header[:_HEADER_BASE.size]) != _HEADER_CRC.unpack_from(
                header, _HEADER_BASE.size)[0]:
            self.corrupt("header CRC mismatch", section="header", offset=0)
        (_magic, fmt, page, nsections, dir_off, dir_nbytes,
         dir_crc) = _HEADER_BASE.unpack_from(header, 0)
        if fmt != STORE_VERSION:
            raise DatasetError(
                f"{self.path}: unsupported store format version {fmt} "
                f"(this build reads {STORE_VERSION})")
        if page != PAGE_SIZE:
            self.corrupt(f"unsupported page size {page}",
                         section="header", offset=0)
        if not (HEADER_SIZE <= dir_off and dir_off + dir_nbytes <= self._size):
            self.corrupt(
                f"directory [{dir_off}, {dir_off + dir_nbytes}) outside "
                f"file of {self._size} byte(s)",
                section="directory", offset=dir_off)
        if dir_nbytes != nsections * _ENTRY.size:
            self.corrupt(
                f"directory size {dir_nbytes} != {nsections} "
                f"x {_ENTRY.size}-byte entries",
                section="directory", offset=dir_off)
        dir_bytes = bytes(raw[dir_off:dir_off + dir_nbytes])
        if _crc(dir_bytes) != dir_crc:
            self.corrupt("directory CRC mismatch", section="directory",
                         offset=dir_off)
        self._entries: Dict[str, Tuple[int, int, int, int]] = {}
        for pos in range(nsections):
            raw_name, off, nbytes, crc, code = _ENTRY.unpack_from(
                dir_bytes, pos * _ENTRY.size)
            try:
                name = raw_name.rstrip(b"\x00").decode("utf-8")
            except UnicodeDecodeError:
                self.corrupt(f"undecodable section name in entry {pos}",
                             section="directory", offset=dir_off)
            if not name or name in self._entries:
                self.corrupt(f"duplicate or empty section name {name!r}",
                             section="directory", offset=dir_off)
            if code and code not in _CODES:
                self.corrupt(f"unknown typecode {code}", section=name,
                             offset=dir_off)
            if not (HEADER_SIZE <= off and off + nbytes <= self._size):
                self.corrupt(
                    f"section [{off}, {off + nbytes}) outside file of "
                    f"{self._size} byte(s)", section=name, offset=off)
            self._entries[name] = (off, nbytes, crc, code)
        self.meta = self._decode_meta_section()
        self._check_layout()
        if verify:
            self.verify()

    def _decode_meta_section(self) -> StoreMeta:
        off = self._entries.get("meta", (0,))[0]
        payload = bytes(self.section("meta"))
        try:
            return _decode_meta(payload)
        except SnapshotCorruptionError as exc:
            if exc.path is not None:
                raise
            raise SnapshotCorruptionError(
                exc.base_message, path=self.path, section="meta",
                offset=off + (exc.offset or 0)) from None
        except (ValueError, KeyError, IndexError, OverflowError,
                TypeError) as exc:
            raise SnapshotCorruptionError(
                f"corrupt store meta: {type(exc).__name__}: {exc}",
                path=self.path, section="meta", offset=off) from exc

    def _check_layout(self) -> None:
        """Cross-check every fixed-size section against the meta counts.

        Pure arithmetic on directory entries -- no payload is touched,
        so open stays O(sections)."""
        meta = self.meta
        slots, eslots = meta.node_slots, meta.edge_slots
        counts = meta.counts
        expected = {
            "vocab.offs": 8 * (counts["vocab"] + 1),
            "idf": 8 * counts["vocab"],
            "post.data": 4 * counts["post"],
            "post.offs": 8 * (counts["vocab"] + 1),
            "node.alive": slots,
            "name.offs": 8 * (slots + 1),
            "kw.offs": 8 * (slots + 1),
            "nattr.offs": 8 * (slots + 1),
            "ntype": 4 * slots,
            "type.offs": 8 * (counts["types"] + 1),
            "tmem.data": 4 * counts["tmem"],
            "tmem.offs": 8 * (counts["types"] + 1),
            "edge.alive": eslots,
            "edge.src": 4 * eslots,
            "edge.dst": 4 * eslots,
            "edge.rel": 4 * eslots,
            "eattr.offs": 8 * (eslots + 1),
            "rel.offs": 8 * (counts["rels"] + 1),
            "csr.indptr": 4 * (slots + 1),
            "csr.indices": 4 * counts["csr"],
            "csr.rels": 4 * counts["csr"],
            "csr.dirs": counts["csr"],
            "csr.eids": 4 * counts["csr"],
            "pool.offs": 8 * (counts["pool"] + 1),
            "ann.vecs": 4 * slots * counts["ann_dim"],
            "ann.sigs": 8 * slots * counts["ann_bands"],
        }
        for attr, code in _FEATURE_COLUMNS:
            expected[f"feat.{attr}"] = (4 if code == "I" else 1) * slots
        for name, nbytes in expected.items():
            entry = self._entries.get(name)
            if entry is None:
                self.corrupt(f"missing section {name!r}", section=name,
                             offset=self._size)
            elif entry[1] != nbytes:
                self.corrupt(
                    f"expected {nbytes} byte(s), directory says {entry[1]}",
                    section=name, offset=entry[0])

    # -- access ---------------------------------------------------------
    def corrupt(self, message: str, section: Optional[str] = None,
                offset: Optional[int] = None):
        raise SnapshotCorruptionError(
            f"corrupt store: {message}", path=self.path, section=section,
            offset=offset)

    def section(self, name: str) -> memoryview:
        """CRC-verified (on first touch) read-only view of a section."""
        view = self._views.get(name)
        if view is not None:
            return view
        entry = self._entries.get(name)
        if entry is None:
            self.corrupt(f"missing section {name!r}", section=name,
                         offset=self._size)
        off, nbytes, crc, code = entry
        view = self._base[off:off + nbytes]
        if _crc(view) != crc:
            self.corrupt("section CRC mismatch", section=name, offset=off)
        if code:
            view = view.cast(chr(code))
        self._views[name] = view
        return view

    def strings(self, prefix: str, count: Optional[int] = None) -> StringTable:
        return StringTable(self, prefix, count)

    def json_at(self, section: str, i: int, raw: str, want: type):
        """Decode per-slot JSON payloads with typed failure."""
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError as exc:
            self.corrupt(f"invalid JSON in slot {i}: {exc}",
                         section=f"{section}.blob")
        if not isinstance(decoded, want):
            self.corrupt(
                f"slot {i} must decode to {want.__name__}, "
                f"got {type(decoded).__name__}", section=f"{section}.blob")
        return decoded

    def verify(self) -> None:
        """Force a CRC check of every section (corruption audits)."""
        for name in self._entries:
            self.section(name)

    @property
    def nbytes(self) -> int:
        return self._size

    @property
    def entries(self) -> Dict[str, Tuple[int, int, int, int]]:
        """Section directory: name -> (offset, nbytes, crc, typecode)."""
        return dict(self._entries)

    def close(self) -> None:
        """Best-effort release of views and the mapping (idempotent).

        Exported views (attached indexes, lazy containers) keep the
        mapping alive until they are dropped; a ``BufferError`` here
        means such a view is still live and the OS mapping simply stays
        until process exit -- never an error for the caller.
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        try:
            self._base.release()
        except (AttributeError, BufferError):  # pragma: no cover
            pass
        try:
            self._mmap.close()
        except (BufferError, ValueError):  # still-exported views
            pass
        try:
            self._file.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __repr__(self) -> str:
        return (f"StoreReader({self.path!r}, sections="
                f"{len(getattr(self, '_entries', ()))}, "
                f"nbytes={getattr(self, '_size', 0)})")
