"""Score explanations: why did this node/match score what it scored?

A ranking function combining 46 measures is opaque without attribution;
this module decomposes any ``F_N`` / ``F_E`` value into per-measure
weighted contributions and renders full-match explanations.  Used by the
CLI's ``--explain`` flag and handy when tuning weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.similarity.descriptors import Descriptor

if TYPE_CHECKING:  # avoid a circular import; Query is annotation-only here
    from repro.query.model import Query
from repro.similarity.functions import EDGE_FUNCTIONS, NODE_FUNCTIONS
from repro.similarity.scoring import ScoringFunction


@dataclass(frozen=True)
class Contribution:
    """One measure's share of an aggregate score."""

    measure: str
    raw: float        # the measure's own [0, 1] output
    weighted: float   # after weight normalization (sums to the score)


def explain_node_score(
    scorer: ScoringFunction,
    query: Descriptor,
    node_id: int,
    top: Optional[int] = None,
) -> List[Contribution]:
    """Per-measure breakdown of ``F_N(query, node_id)``.

    The weighted contributions sum to the memoized score (wildcard
    queries use the popularity formula and return a single synthetic
    contribution).  *top* keeps only the largest contributors.
    """
    if query.is_wildcard:
        score = scorer.node_score(query, node_id)
        return [Contribution("wildcard_base_plus_popularity", score, score)]
    data = scorer.descriptors.get(node_id)
    ctx = scorer.corpus
    weight_by_fn = {fn: w for fn, w in scorer._node_measures}
    contributions: List[Contribution] = []
    for name, fn in NODE_FUNCTIONS:
        weight = weight_by_fn.get(fn)
        if weight is None:
            continue
        raw = fn(query, data, ctx)
        if raw > 0.0:
            contributions.append(Contribution(name, raw, weight * raw))
    contributions.sort(key=lambda c: -c.weighted)
    return contributions[:top] if top else contributions


def explain_relation_score(
    scorer: ScoringFunction,
    query: Descriptor,
    relation: str,
    top: Optional[int] = None,
) -> List[Contribution]:
    """Per-measure breakdown of a direct edge's ``F_E``."""
    data = Descriptor(relation)
    ctx = scorer.corpus
    weight_by_fn = {fn: w for fn, w in scorer._edge_measures}
    contributions: List[Contribution] = []
    for name, fn in EDGE_FUNCTIONS:
        weight = weight_by_fn.get(fn)
        if weight is None:
            continue
        raw = fn(query, data, ctx)
        if raw > 0.0:
            contributions.append(Contribution(name, raw, weight * raw))
    contributions.sort(key=lambda c: -c.weighted)
    return contributions[:top] if top else contributions


def explain_match(
    scorer: ScoringFunction,
    query: "Query",
    match,
    measures_per_element: int = 3,
) -> str:
    """Human-readable explanation of one :class:`repro.core.Match`.

    Lists every query node and edge with its score and the leading
    measure contributions (node side) / path interpretation (edge side).
    """
    graph = scorer.graph
    lines: List[str] = [f"match score {match.score:.3f}"]
    for qid in sorted(match.assignment):
        node = query.nodes[qid]
        data_node = match.assignment[qid]
        score = match.node_scores.get(qid, 0.0)
        lines.append(
            f"  node {qid} {node.label!r} -> {graph.describe(data_node)}"
            f"  F_N={score:.3f}"
        )
        for c in explain_node_score(
            scorer, node.descriptor, data_node, top=measures_per_element
        ):
            lines.append(
                f"      {c.measure:24s} raw={c.raw:.2f}"
                f"  contributes {c.weighted:.3f}"
            )
    for edge in query.edges:
        if edge.id not in match.edge_scores:
            continue
        hops = match.edge_hops.get(edge.id, 1)
        score = match.edge_scores[edge.id]
        src = match.assignment[edge.src]
        dst = match.assignment[edge.dst]
        if hops == 1:
            detail = "direct edge"
        else:
            detail = f"path of length {hops} (decay lambda^{hops - 1})"
        lines.append(
            f"  edge {edge.id} {edge.label!r} "
            f"{graph.node(src).name} ~ {graph.node(dst).name}"
            f"  F_E={score:.3f}  [{detail}]"
        )
    return "\n".join(lines)
