"""Similarity substrate: the paper's learned 46-measure ranking function.

Public surface:

* :class:`Descriptor` / :class:`CorpusContext` -- the two sides of a
  comparison plus corpus statistics.
* :data:`NODE_FUNCTIONS` / :data:`EDGE_FUNCTIONS` -- the measure catalog.
* :class:`ScoringConfig` / :class:`ScoringFunction` -- Eq. 1/Eq. 2
  aggregation with thresholds and the d-bounded edge-path score.
* :func:`learn_weights` -- offline weight training (Section VII setup).
"""

from repro.similarity.descriptors import CorpusContext, Descriptor, DescriptorCache
from repro.similarity.functions import (
    EDGE_FUNCTIONS,
    FAST_NODE_FUNCTION_NAMES,
    NODE_FUNCTIONS,
    TOTAL_FUNCTIONS,
)
from repro.similarity.explain import (
    Contribution,
    explain_match,
    explain_node_score,
    explain_relation_score,
)
from repro.similarity.config_io import load_config, save_config
from repro.similarity.learning import evaluate_weights, learn_weights
from repro.similarity.path_score import PathScore
from repro.similarity.scoring import (
    DEFAULT_EDGE_WEIGHTS,
    DEFAULT_NODE_WEIGHTS,
    ScoringConfig,
    ScoringFunction,
)

__all__ = [
    "Contribution",
    "CorpusContext",
    "DEFAULT_EDGE_WEIGHTS",
    "DEFAULT_NODE_WEIGHTS",
    "Descriptor",
    "DescriptorCache",
    "EDGE_FUNCTIONS",
    "FAST_NODE_FUNCTION_NAMES",
    "NODE_FUNCTIONS",
    "PathScore",
    "ScoringConfig",
    "ScoringFunction",
    "TOTAL_FUNCTIONS",
    "evaluate_weights",
    "explain_match",
    "explain_node_score",
    "explain_relation_score",
    "learn_weights",
    "load_config",
    "save_config",
]
