"""Persistence for scoring configurations (learned weights included).

Training weights (:mod:`repro.similarity.learning`) is cheap but not
free; saving the resulting :class:`ScoringConfig` to JSON lets deployments
ship a tuned ranking function and reload it byte-identically.
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.errors import ScoringError
from repro.similarity.scoring import ScoringConfig

_FORMAT_VERSION = 1


def save_config(config: ScoringConfig, path: Union[str, os.PathLike]) -> None:
    """Write *config* to *path* as JSON (validated first)."""
    config.validate()
    payload = {
        "version": _FORMAT_VERSION,
        "node_weights": dict(config.node_weights),
        "edge_weights": dict(config.edge_weights),
        "node_threshold": config.node_threshold,
        "edge_threshold": config.edge_threshold,
        "path_lambda": config.path_lambda,
        "fast": config.fast,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_config(path: Union[str, os.PathLike]) -> ScoringConfig:
    """Load a config saved by :func:`save_config`.

    Raises:
        ScoringError: on missing files, version mismatch, malformed JSON
            or invalid weight/threshold values.
    """
    if not os.path.exists(path):
        raise ScoringError(f"scoring config not found: {path}")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ScoringError(f"malformed scoring config {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise ScoringError(
            f"unsupported scoring-config version in {path}: "
            f"{payload.get('version') if isinstance(payload, dict) else payload!r}"
        )
    try:
        config = ScoringConfig(
            node_weights=dict(payload["node_weights"]),
            edge_weights=dict(payload["edge_weights"]),
            node_threshold=float(payload["node_threshold"]),
            edge_threshold=float(payload["edge_threshold"]),
            path_lambda=float(payload["path_lambda"]),
            fast=bool(payload.get("fast", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScoringError(f"invalid scoring config {path}: {exc}") from exc
    config.validate()
    return config
