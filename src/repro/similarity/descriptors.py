"""Descriptors: the common "description" view both sides of a match share.

A similarity function compares a *query-side* description (a query node's
label, type constraint and keywords) against a *data-side* description (a
graph node's name, type and keywords).  Both are represented by
:class:`Descriptor`, which precomputes the token sets, n-grams and phonetic
keys the 46 similarity functions consume, so per-pair evaluation does no
repeated string processing.

:class:`CorpusContext` holds graph-level statistics (IDF table, degree
normalization) needed by the TF-IDF and frequency measures; one instance is
built per graph and shared across queries.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.graph.knowledge_graph import KnowledgeGraph, NodeData
from repro.textutil import tokenize, tokenize_tuple
from repro.similarity.strings import initials, ngrams, rough_phonetic, soundex

WILDCARD = "?"


class DescriptorKey:
    """Canonical, pre-hashed identity of a descriptor's content.

    Scoring memos and the cross-query candidate cache key on descriptor
    *content* so equal constraints from different query objects share
    entries.  Hashing a raw content tuple on every hot-path dict lookup
    re-hashes its strings each time; a ``DescriptorKey`` hashes the tuple
    once at construction and serves the stored hash thereafter.  Keys are
    interned (see :func:`intern_descriptor_key`), so equality checks
    between live keys normally short-circuit on identity.
    """

    __slots__ = ("content", "_hash")

    def __init__(self, content: Tuple) -> None:
        self.content = content
        self._hash = hash(content)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, DescriptorKey) and self.content == other.content

    def __repr__(self) -> str:
        return f"DescriptorKey{self.content!r}"


#: Intern table for descriptor keys.  Bounded: query-side descriptors are
#: few, but pathological workloads (millions of distinct constraints)
#: must not grow it without limit -- on overflow the table resets, which
#: only costs the identity fast path, never correctness.
_KEY_INTERN: Dict[Tuple, DescriptorKey] = {}
_KEY_INTERN_MAX = 65536


def intern_descriptor_key(content: Tuple) -> DescriptorKey:
    """The canonical :class:`DescriptorKey` for *content* (interned)."""
    key = _KEY_INTERN.get(content)
    if key is None:
        if len(_KEY_INTERN) >= _KEY_INTERN_MAX:
            _KEY_INTERN.clear()
        key = DescriptorKey(content)
        _KEY_INTERN[content] = key
    return key


class Descriptor:
    """Precomputed description features for one node-side of a comparison.

    Attributes:
        name: raw text (entity name or query label); ``"?"`` is a wildcard.
        type: type label ("" when unconstrained).
        keywords: extra keywords.
        degree: data-side undirected degree (0 for query-side descriptors).
    """

    __slots__ = (
        "name", "type", "keywords", "degree", "is_wildcard", "name_lower",
        "name_tokens", "token_set", "keyword_tokens", "type_tokens",
        "bigrams", "trigrams", "soundex_first", "phonetic", "initials",
        "numbers", "_cache_key",
    )

    def __init__(
        self,
        name: str,
        type: str = "",
        keywords: Tuple[str, ...] = (),
        degree: int = 0,
    ) -> None:
        self.name = name
        self.type = type
        self.keywords = keywords
        self.degree = degree
        self.is_wildcard = name.strip() in ("", WILDCARD)
        self.name_lower = name.lower().strip()
        self.name_tokens: Tuple[str, ...] = tokenize_tuple(name)
        self.keyword_tokens: FrozenSet[str] = frozenset(
            t for kw in keywords for t in tokenize_tuple(kw)
        )
        self.type_tokens: FrozenSet[str] = frozenset(tokenize_tuple(type))
        self.token_set: FrozenSet[str] = (
            frozenset(self.name_tokens) | self.keyword_tokens
        )
        self.bigrams = ngrams(self.name_lower, 2)
        self.trigrams = ngrams(self.name_lower, 3)
        self.soundex_first = soundex(self.name_tokens[0]) if self.name_tokens else ""
        self.phonetic = rough_phonetic("".join(self.name_tokens))
        self.initials = initials(self.name_tokens)
        self.numbers: Tuple[float, ...] = tuple(
            float(t) for t in self.name_tokens if t.isdigit()
        )
        self._cache_key: Optional[DescriptorKey] = None

    @property
    def cache_key(self) -> DescriptorKey:
        """Canonical content key of this descriptor (interned, lazy).

        Two descriptors built from the same ``(name, type, keywords,
        degree)`` share the *same* key object, so score memos and the
        candidate cache can treat them as one constraint.  Built on
        first access: data-side descriptors (one per graph node) are
        never used as memo keys and skip the cost entirely.
        """
        key = self._cache_key
        if key is None:
            key = intern_descriptor_key(
                (self.name, self.type, self.keywords, self.degree)
            )
            self._cache_key = key
        return key

    @classmethod
    def from_node_data(cls, data: NodeData, degree: int = 0) -> "Descriptor":
        """Build a data-side descriptor from a graph node's description."""
        return cls(data.name, data.type, data.keywords, degree)

    def __repr__(self) -> str:
        return f"Descriptor({self.name!r}, type={self.type!r})"


class CorpusContext:
    """Graph-level statistics consumed by frequency-aware measures.

    Attributes:
        idf: token -> inverse document frequency, normalized to (0, 1].
        log_max_degree: normalizer for the degree-prior measure.
    """

    def __init__(self, idf: Dict[str, float], max_degree: int) -> None:
        self.idf = idf
        self.log_max_degree = math.log1p(max(1, max_degree))

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "CorpusContext":
        """Compute IDF over node descriptions and the degree normalizer."""
        n = max(1, graph.num_nodes)
        log_n = math.log1p(n)
        # token_dfs() yields the same integer document frequencies as
        # len(graph.nodes_with_token(token)) -- mmap-backed graphs serve
        # them from stored posting offsets without materializing sets,
        # and identical integer inputs make the floats bit-identical
        # across the in-memory and zero-copy paths.
        idf = {
            token: math.log1p(n / df) / log_n
            for token, df in graph.token_dfs()
        }
        return cls(idf, graph.max_degree)

    @classmethod
    def empty(cls) -> "CorpusContext":
        """A context with no corpus statistics (IDF defaults to 1.0)."""
        return cls({}, 1)

    def idf_of(self, token: str) -> float:
        """IDF of *token*; unknown tokens are maximally rare (1.0)."""
        return self.idf.get(token, 1.0)


class DescriptorCache:
    """Lazy per-graph cache of data-side descriptors.

    Descriptors are built on first access and reused across queries; the
    cache also owns the graph's :class:`CorpusContext`.
    """

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph
        self._descriptors: Dict[int, Descriptor] = {}
        self.corpus = CorpusContext.from_graph(graph)

    def get(self, node_id: int) -> Descriptor:
        """Descriptor of graph node *node_id* (cached)."""
        desc = self._descriptors.get(node_id)
        if desc is None:
            desc = Descriptor.from_node_data(
                self._graph.node(node_id), self._graph.degree(node_id)
            )
            self._descriptors[node_id] = desc
        return desc

    def invalidate(self, node_ids) -> None:
        """Drop cached descriptors for *node_ids* (degree/attrs changed).

        Part of the incremental ``ScoringFunction.refresh`` path: after
        a mutation whose delta touched only these nodes, every other
        descriptor -- and the corpus statistics -- are still exact.
        """
        for node_id in node_ids:
            self._descriptors.pop(node_id, None)

    def rebuild_corpus(self) -> None:
        """Recompute the :class:`CorpusContext` from the live graph."""
        self.corpus = CorpusContext.from_graph(self._graph)
