"""String-similarity primitives used by the similarity-function catalog.

Implemented from scratch (no external dependencies): Levenshtein,
Jaro-Winkler, character n-grams, Soundex and a simplified Metaphone.
All similarity outputs are normalized to ``[0, 1]``.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Set, Tuple


def levenshtein(a: str, b: str, cap: int = 0) -> int:
    """Edit distance between *a* and *b*.

    Args:
        cap: if positive and the distance provably exceeds it, return
            ``cap + 1`` early (keeps worst-case cost bounded for long names).
    """
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if la == 0:
        return lb
    if lb == 0:
        return la
    if cap and abs(la - lb) > cap:
        return cap + 1
    if la > lb:
        a, b, la, lb = b, a, lb, la
    prev = list(range(la + 1))
    for j in range(1, lb + 1):
        cur = [j] + [0] * la
        bj = b[j - 1]
        row_min = j
        for i in range(1, la + 1):
            cost = 0 if a[i - 1] == bj else 1
            cur[i] = min(prev[i] + 1, cur[i - 1] + 1, prev[i - 1] + cost)
            if cur[i] < row_min:
                row_min = cur[i]
        if cap and row_min > cap:
            return cap + 1
        prev = cur
    return prev[la]


def edit_similarity(a: str, b: str) -> float:
    """``1 - dist / max_len``, in [0, 1]."""
    if not a and not b:
        return 1.0
    max_len = max(len(a), len(b))
    cap = max_len  # exact distance needed for the normalized score
    return 1.0 - levenshtein(a, b, cap=cap) / max_len


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    if window < 0:
        window = 0
    match_a = [False] * la
    match_b = [False] * lb
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not match_b[j] and b[j] == ch:
                match_a[i] = match_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(la):
        if match_a[i]:
            while not match_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / la + matches / lb + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity (prefix bonus up to 4 chars)."""
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def ngrams(text: str, n: int) -> FrozenSet[str]:
    """Character n-grams of *text* (padded with ^ / $ sentinels).

    Every returned gram has length exactly *n*: when the sentinel-padded
    text is shorter than *n* (only possible for ``n > len(text) + 2``),
    it is right-padded with extra ``$`` sentinels instead of leaking a
    shorter string into the set.  Mixing gram lengths inside one
    Jaccard/Dice comparison would silently deflate every short-vs-long
    score.
    """
    if not text:
        return frozenset()
    padded = "^" + text + "$"
    if len(padded) < n:
        return frozenset((padded.ljust(n, "$"),))
    return frozenset(padded[i : i + n] for i in range(len(padded) - n + 1))


def jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Jaccard coefficient of two sets.

    Two empty sets compare equal, so ``jaccard(∅, ∅) == 1.0`` — matching
    ``edit_similarity("", "") == 1.0`` and keeping ``sim(x, x) == 1``
    reflexivity across the catalog.  One empty side still scores 0.
    """
    if not a and not b:
        return 1.0
    inter = len(a & b)
    if inter == 0:
        return 0.0
    return inter / (len(a) + len(b) - inter)


def dice(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Dice coefficient of two sets (``dice(∅, ∅) == 1.0``, see jaccard)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


def overlap_coefficient(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Overlap coefficient (intersection over smaller set size).

    ``overlap_coefficient(∅, ∅) == 1.0``, see jaccard.
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def common_prefix_ratio(a: str, b: str) -> float:
    """Length of common prefix over the shorter string's length."""
    if not a or not b:
        return 0.0
    n = 0
    for ca, cb in zip(a, b):
        if ca != cb:
            break
        n += 1
    return n / min(len(a), len(b))


def common_suffix_ratio(a: str, b: str) -> float:
    """Length of common suffix over the shorter string's length."""
    return common_prefix_ratio(a[::-1], b[::-1])


_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(word: str) -> str:
    """American Soundex code (e.g. ``soundex("Robert") == "R163"``)."""
    word = "".join(ch for ch in word.lower() if ch.isalpha())
    if not word:
        return ""
    first = word[0].upper()
    encoded = []
    prev_code = _SOUNDEX_CODES.get(word[0], "")
    for ch in word[1:]:
        code = _SOUNDEX_CODES.get(ch, "")
        if code and code != prev_code:
            encoded.append(code)
        if ch not in "hw":  # h/w do not reset the previous code
            prev_code = code
        if len(encoded) == 3:
            break
    return (first + "".join(encoded)).ljust(4, "0")


def rough_phonetic(word: str) -> str:
    """A simplified Metaphone-style key: drop vowels after the first letter,
    collapse doubled letters, normalize a few digraphs."""
    word = "".join(ch for ch in word.lower() if ch.isalpha())
    if not word:
        return ""
    for src, dst in (("ph", "f"), ("gh", "g"), ("kn", "n"), ("wr", "r"),
                     ("ck", "k"), ("sch", "sk"), ("th", "t")):
        word = word.replace(src, dst)
    out = [word[0]]
    for ch in word[1:]:
        if ch in "aeiouy":
            continue
        if out[-1] != ch:
            out.append(ch)
    return "".join(out)


def initials(tokens: Sequence[str]) -> str:
    """First letters of *tokens*, lowercased (``["New","York"] -> "ny"``)."""
    return "".join(t[0].lower() for t in tokens if t)
