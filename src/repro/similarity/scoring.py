"""Aggregate scoring: ``F_N``, ``F_E`` and the match score ``F`` (Eq. 1-2).

The paper's ranking function aggregates 46 similarity measures with learned
weights:

    F_N(v, phi(v)) = sum_i alpha_i * f_i(v, phi(v))          (Eq. 1)
    F(phi(Q)) = sum_v F_N(v, phi(v)) + sum_e F_E(e, phi(e))  (Eq. 2)

plus a practical constraint that every node and edge score exceeds a
threshold.  :class:`ScoringFunction` implements this against a fixed graph:
weights are normalized so each per-element score lies in ``[0, 1]``
(matching the paper's running examples, e.g. node score 0.9), scores are
computed online and memoized per (query element, data element) pair so each
algorithm pays for a score exactly once per query.
"""

from __future__ import annotations

import hashlib
import math

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ScoringError
from repro.similarity import ontology
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.similarity.descriptors import (
    CorpusContext,
    Descriptor,
    DescriptorCache,
    DescriptorKey,
)
from repro.similarity.functions import (
    EDGE_FUNCTIONS,
    FAST_NODE_FUNCTION_NAMES,
    NODE_FUNCTIONS,
    SimilarityFn,
)
from repro.similarity.path_score import PathScore

#: Hand-set default weights (un-normalized); emphasis mirrors what
#: :func:`repro.similarity.learning.learn_weights` converges to on the
#: synthetic training set: exact/token evidence dominates, fuzzy measures
#: refine, priors contribute weakly.
DEFAULT_NODE_WEIGHTS: Dict[str, float] = {
    "exact_name": 3.0,
    "name_edit": 1.2,
    "name_jaro_winkler": 1.0,
    "token_jaccard": 2.0,
    "token_dice": 1.0,
    "token_overlap": 1.0,
    "prefix_ratio": 0.4,
    "suffix_ratio": 0.3,
    "containment": 1.2,
    "first_token_equal": 1.0,
    "last_token_equal": 1.0,
    "query_token_coverage": 2.0,
    "data_token_coverage": 0.8,
    "bigram_jaccard": 0.5,
    "trigram_jaccard": 0.5,
    "soundex_first_token": 0.3,
    "phonetic_name": 0.3,
    "acronym_forward": 1.0,
    "acronym_backward": 0.8,
    "abbreviation_tokens": 0.8,
    "initials_similarity": 0.4,
    "best_token_edit": 1.0,
    "synonym_token": 1.5,
    "synset_jaccard": 0.8,
    "type_exact": 1.5,
    "type_synonym": 0.8,
    "type_ontology": 0.8,
    "type_subsumption": 1.0,
    "type_token_overlap": 0.4,
    "keyword_jaccard": 0.8,
    "keyword_overlap": 0.5,
    "keyword_in_name": 0.6,
    "name_in_keyword": 0.6,
    "tfidf_cosine": 1.5,
    "idf_weighted_coverage": 1.5,
    "rare_token_bonus": 0.6,
    "length_ratio": 0.2,
    "numeric_exact": 0.8,
    "numeric_close": 0.3,
    "unit_convert_match": 0.8,
    "degree_prior": 0.25,
    "wildcard": 1.8,
}

DEFAULT_EDGE_WEIGHTS: Dict[str, float] = {
    "relation_exact": 3.0,
    "relation_synonym": 1.5,
    "relation_token_jaccard": 1.0,
    "relation_wildcard": 2.0,
}


@dataclass(frozen=True)
class ScoringConfig:
    """Configuration of the aggregate scoring function.

    Attributes:
        node_weights: weight per node-measure name (missing names weigh 0).
        edge_weights: weight per edge-measure name.
        node_threshold: minimum ``F_N`` for a node match to be admissible.
        edge_threshold: minimum ``F_E`` for an edge/path match.
        path_lambda: decay base of the edge-path score ``lambda^(h-1)``.
        fast: use only the cheap measure subset (benchmark mode; see
            :data:`repro.similarity.functions.FAST_NODE_FUNCTION_NAMES`).
    """

    node_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_NODE_WEIGHTS)
    )
    edge_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_EDGE_WEIGHTS)
    )
    node_threshold: float = 0.25
    edge_threshold: float = 0.05
    path_lambda: float = 0.5
    fast: bool = False

    def validate(self) -> None:
        """Raise :class:`ScoringError` on invalid settings."""
        known_node = {name for name, _fn in NODE_FUNCTIONS}
        known_edge = {name for name, _fn in EDGE_FUNCTIONS}
        for name in self.node_weights:
            if name not in known_node:
                raise ScoringError(f"unknown node measure {name!r}")
        for name in self.edge_weights:
            if name not in known_edge:
                raise ScoringError(f"unknown edge measure {name!r}")
        if any(w < 0 for w in self.node_weights.values()):
            raise ScoringError("node weights must be non-negative")
        if any(w < 0 for w in self.edge_weights.values()):
            raise ScoringError("edge weights must be non-negative")
        if not (0.0 <= self.node_threshold <= 1.0):
            raise ScoringError(f"node_threshold {self.node_threshold} not in [0,1]")
        if not (0.0 <= self.edge_threshold <= 1.0):
            raise ScoringError(f"edge_threshold {self.edge_threshold} not in [0,1]")
        if not (0.0 < self.path_lambda < 1.0):
            raise ScoringError(f"path_lambda {self.path_lambda} not in (0,1)")

    def with_fast(self, fast: bool = True) -> "ScoringConfig":
        """Copy of this config with the fast-mode flag set."""
        return replace(self, fast=fast)

    def fingerprint(self) -> str:
        """Stable short digest of every score-relevant setting.

        Two configs with equal fingerprints produce identical scores for
        any (query, node) pair, so cross-query caches key on it: a cache
        shared between scorers with different weights or thresholds must
        never serve one's entries to the other.
        """
        payload = repr((
            sorted(self.node_weights.items()),
            sorted(self.edge_weights.items()),
            self.node_threshold,
            self.edge_threshold,
            self.path_lambda,
            self.fast,
        ))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


class ScoringFunction:
    """Online, memoized scoring of query elements against one graph.

    Args:
        graph: the data graph.
        config: scoring configuration (validated on construction).

    The instance owns the graph's :class:`DescriptorCache`, so creating one
    per (graph, config) pair and sharing it across queries and algorithms
    is the intended usage -- every compared algorithm then sees byte-
    identical scores and pays the same scoring cost.
    """

    def __init__(
        self, graph: KnowledgeGraph, config: Optional[ScoringConfig] = None
    ) -> None:
        self.graph = graph
        self.config = config or ScoringConfig()
        self.config.validate()
        self._graph_version = graph.version
        self.descriptors = DescriptorCache(graph)
        self.path = PathScore(self.config.path_lambda)
        self._node_measures = self._select_node_measures()
        self._edge_measures = self._select_edge_measures()
        # Memos are keyed on descriptor *content* (interned, pre-hashed
        # DescriptorKey), so equal constraints from different query
        # objects -- the norm in template-generated workloads -- share
        # entries instead of re-scoring per query.
        self._node_cache: Dict[Tuple[DescriptorKey, int], float] = {}
        self._edge_cache: Dict[Tuple[DescriptorKey, str], float] = {}
        self._relation_descriptors: Dict[str, Descriptor] = {}
        self.node_score_calls = 0
        self.edge_score_calls = 0
        self._fingerprint: Optional[str] = None
        #: Optional cross-query :class:`repro.perf.CandidateCache`.
        #: ``None`` (the default) keeps the seed's exact code path --
        #: attaching a cache is always an explicit opt-in.
        self.candidate_cache = None
        #: Optional :class:`repro.index.GraphIndex` for upper-bound-
        #: pruned candidate generation (attach via
        #: :func:`repro.index.attach_index`); same opt-in contract.
        self.graph_index = None
        #: Optional :class:`repro.ann.SemanticTier` adding ANN-sourced,
        #: exactly-reranked candidates when the token shortlist
        #: under-fills (attach via :func:`repro.ann.attach_semantic`);
        #: same opt-in contract.
        self.semantic_tier = None

    # ------------------------------------------------------------------
    def _select_node_measures(self) -> List[Tuple[SimilarityFn, float]]:
        weights = self.config.node_weights
        names = (
            set(FAST_NODE_FUNCTION_NAMES) if self.config.fast else set(weights)
        )
        selected = [
            (fn, weights.get(name, 0.0))
            for name, fn in NODE_FUNCTIONS
            if name in names and weights.get(name, 0.0) > 0.0
        ]
        if not selected:
            raise ScoringError("no node measures selected (all weights zero?)")
        total = sum(w for _fn, w in selected)
        return [(fn, w / total) for fn, w in selected]

    def _select_edge_measures(self) -> List[Tuple[SimilarityFn, float]]:
        weights = self.config.edge_weights
        selected = [
            (fn, weights.get(name, 0.0))
            for name, fn in EDGE_FUNCTIONS
            if weights.get(name, 0.0) > 0.0
        ]
        if not selected:
            raise ScoringError("no edge measures selected (all weights zero?)")
        total = sum(w for _fn, w in selected)
        return [(fn, w / total) for fn, w in selected]

    # ------------------------------------------------------------------
    @property
    def corpus(self) -> CorpusContext:
        return self.descriptors.corpus

    @property
    def fingerprint(self) -> str:
        """Digest of the scoring config (cached; see
        :meth:`ScoringConfig.fingerprint`)."""
        if self._fingerprint is None:
            self._fingerprint = self.config.fingerprint()
        return self._fingerprint

    def node_score(self, query: Descriptor, node_id: int) -> float:
        """``F_N(query, node_id)`` in [0, 1] (Eq. 1), memoized.

        Wildcard ('?') query nodes bypass the aggregate: a variable matches
        every node with a flat base score plus a small popularity prior
        (``0.4 + 0.2 * normalized log-degree``).  An untyped variable would
        otherwise zero out on 40+ of the 42 measures and drop below any
        useful threshold.  A *typed* wildcard still consults the type
        measures on top of the base, so "?:director" prefers directors.
        """
        key = (query.cache_key, node_id)
        cached = self._node_cache.get(key)
        if cached is not None:
            return cached
        self.node_score_calls += 1
        data = self.descriptors.get(node_id)
        ctx = self.corpus
        if query.is_wildcard:
            score = 0.4 + 0.2 * min(
                1.0, math.log1p(data.degree) / ctx.log_max_degree
            )
            if query.type:
                if data.type and ontology.is_subtype(data.type, query.type):
                    score += 0.2
                elif data.type.lower() != query.type.lower():
                    score -= 0.3
        else:
            score = 0.0
            for fn, weight in self._node_measures:
                score += weight * fn(query, data, ctx)
        score = min(1.0, max(0.0, score))
        self._node_cache[key] = score
        return score

    def relation_score(self, query: Descriptor, relation: str) -> float:
        """``F_E`` for a direct edge with the given relation label, memoized."""
        key = (query.cache_key, relation)
        cached = self._edge_cache.get(key)
        if cached is not None:
            return cached
        self.edge_score_calls += 1
        data = self._relation_descriptors.get(relation)
        if data is None:
            data = Descriptor(relation)
            self._relation_descriptors[relation] = data
        ctx = self.corpus
        score = 0.0
        for fn, weight in self._edge_measures:
            score += weight * fn(query, data, ctx)
        score = min(1.0, max(0.0, score))
        self._edge_cache[key] = score
        return score

    def edge_score(
        self, query: Descriptor, best_relation_score: float, hops: int
    ) -> float:
        """``F_E(e, phi_d(e))`` for a path of length *hops*.

        *best_relation_score* is the best :meth:`relation_score` over the
        parallel data edges when ``hops == 1``; ignored for longer paths
        (see :mod:`repro.similarity.path_score` for the semantics).
        """
        if hops == 1:
            return best_relation_score
        return self.path.decay(hops)

    def edge_upper_bound(self, hops: int) -> float:
        """Largest possible ``F_E`` for a path of exactly *hops* hops."""
        return 1.0 if hops == 1 else self.path.decay(hops)

    # ------------------------------------------------------------------
    def passes_node_threshold(self, score: float) -> bool:
        return score >= self.config.node_threshold

    def passes_edge_threshold(self, score: float) -> bool:
        return score >= self.config.edge_threshold

    def reset_counters(self) -> None:
        """Zero the call counters (cache stays warm)."""
        self.node_score_calls = 0
        self.edge_score_calls = 0

    def clear_cache(self) -> None:
        """Drop memoized scores (for cold-run measurements)."""
        self._node_cache.clear()
        self._edge_cache.clear()

    def refresh(self) -> bool:
        """Resynchronize memoized state after graph mutations.

        Diffs the scorer's last-seen structural version against the
        graph's delta journal and drops exactly the state the mutations
        could have affected:

        * corpus statistics drifted (``stats_changed``: node count moved
          every IDF denominator, or the max-degree normalizer changed)
          or the journal no longer covers the span -- full rebuild of
          the descriptor cache and both score memos;
        * otherwise, only descriptors and node-score memo entries for
          the touched node ids, and edge-score memo entries for the
          touched relation labels, are dropped -- everything else is
          provably still exact.

        Returns True when anything was dropped; False when the graph
        has not changed.  Idempotent; call between a mutation batch and
        the next search (the engines' ``assert_graph_unchanged`` guard
        fails loudly if you forget).
        """
        graph = self.graph
        if graph.version == self._graph_version:
            return False
        summary = graph.delta_since(self._graph_version)
        if summary is None or summary.stats_changed:
            self.descriptors = DescriptorCache(graph)
            self._node_cache.clear()
            self._edge_cache.clear()
        else:
            if summary.nodes:
                self.descriptors.invalidate(summary.nodes)
                touched = summary.nodes
                self._node_cache = {
                    key: score for key, score in self._node_cache.items()
                    if key[1] not in touched
                }
            if summary.relations:
                relations = summary.relations
                self._edge_cache = {
                    key: score for key, score in self._edge_cache.items()
                    if key[1] not in relations
                }
                for relation in relations:
                    self._relation_descriptors.pop(relation, None)
        self._graph_version = graph.version
        return True

    def assert_graph_unchanged(self) -> None:
        """Fail loudly if the graph was mutated after this scorer last
        synchronized -- cached descriptors, IDF statistics and memoized
        scores would silently be stale otherwise.

        Raises:
            ScoringError: on a version mismatch; call :meth:`refresh`
                (incremental) or rebuild the scorer.
        """
        if self.graph.version != self._graph_version:
            raise ScoringError(
                "graph was modified after this ScoringFunction was built "
                f"(version {self._graph_version} -> {self.graph.version}); "
                "call refresh() or construct a fresh ScoringFunction"
            )
