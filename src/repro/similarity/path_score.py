"""Edge-path similarity: scoring a query edge matched to a path.

Section V-B: when an edge ``e`` is matched to a path ``phi_d(e)`` of length
``h``, the similarity ``F(e, phi_d(e))`` must be monotonically decreasing
in ``h``; the paper's canonical instance is ``lambda^(h-1)`` with
``lambda in (0, 1)``.

This library's d-bounded semantics (shared by STAR, the baselines and the
brute-force oracle, so all agree):

* an edge matches the **shortest** qualifying path between the two node
  matches, of length ``h <= d``;
* at ``h == 1`` the score is the relation similarity of the data edge
  (best over parallel edges) -- labels matter for direct edges;
* at ``h >= 2`` the score is the pure decay ``lambda^(h-1)`` -- a path is a
  connectivity witness, not a labeled relation.

``decay(h)`` is also the *upper bound* the stard message passing uses
(relation similarity never exceeds 1.0).
"""

from __future__ import annotations

from repro.errors import ScoringError


class PathScore:
    """The ``lambda^(h-1)`` decay with precomputed powers.

    Args:
        lam: decay base, must be in (0, 1).
        max_hops: largest hop count to precompute (extended on demand).
    """

    def __init__(self, lam: float = 0.5, max_hops: int = 8) -> None:
        if not (0.0 < lam < 1.0):
            raise ScoringError(f"path decay lambda={lam} must be in (0, 1)")
        self.lam = lam
        self._powers = [lam ** h for h in range(max_hops + 1)]

    def decay(self, hops: int) -> float:
        """``lambda^(hops-1)``; 1.0 for a direct edge (hops == 1).

        Raises:
            ScoringError: for non-positive hop counts.
        """
        if hops < 1:
            raise ScoringError(f"path length must be >= 1, got {hops}")
        idx = hops - 1
        while idx >= len(self._powers):
            self._powers.append(self._powers[-1] * self.lam)
        return self._powers[idx]

    def upper_bound(self, hops: int) -> float:
        """Largest possible edge score for a path of exactly *hops* hops.

        Equals :meth:`decay` because relation similarity is capped at 1.0.
        """
        return self.decay(hops)

    def is_monotone(self, max_hops: int = 6) -> bool:
        """Sanity check: decay is strictly decreasing over 1..max_hops."""
        values = [self.decay(h) for h in range(1, max_hops + 1)]
        return all(a > b for a, b in zip(values, values[1:]))
