"""The catalog of 46 similarity measures.

Section VII of the paper: "We applied 46 similarity functions, covering
acronym, synonym, abbreviation, ontology, unit conversion, frequency,
TF-IDF, NLP parse tree distance, type, edit distance, path distance etc.
The weights of these functions are learned through training."

This module implements that catalog: 42 node measures plus 4 edge measures
(the 46th family, *path distance*, is the edge-path decay applied by
:mod:`repro.similarity.path_score` on top of the edge measures).  Each
measure is a pure function ``(query: Descriptor, data: Descriptor,
ctx: CorpusContext) -> float`` with range ``[0, 1]``; edge measures compare
relation labels.  :data:`NODE_FUNCTIONS` / :data:`EDGE_FUNCTIONS` are the
ordered registries the aggregate scorer and the weight learner index into.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.similarity import ontology
from repro.similarity.descriptors import CorpusContext, Descriptor
from repro.similarity.strings import (
    common_prefix_ratio,
    common_suffix_ratio,
    dice,
    edit_similarity,
    jaccard,
    jaro_winkler,
    overlap_coefficient,
)

SimilarityFn = Callable[[Descriptor, Descriptor, CorpusContext], float]


# ----------------------------------------------------------------------
# Name / string measures
# ----------------------------------------------------------------------

def exact_name(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 iff the full names are equal (case-insensitive)."""
    return 1.0 if not q.is_wildcard and q.name_lower == d.name_lower else 0.0


def name_edit(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Normalized Levenshtein similarity of the full names."""
    if q.is_wildcard:
        return 0.0
    return edit_similarity(q.name_lower, d.name_lower)


def name_jaro_winkler(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Jaro-Winkler similarity of the full names."""
    if q.is_wildcard:
        return 0.0
    return jaro_winkler(q.name_lower, d.name_lower)


def token_jaccard(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Jaccard coefficient of the name-token sets."""
    return jaccard(frozenset(q.name_tokens), frozenset(d.name_tokens))


def token_dice(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Dice coefficient of the name-token sets."""
    return dice(frozenset(q.name_tokens), frozenset(d.name_tokens))


def token_overlap(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Overlap coefficient of the name-token sets."""
    return overlap_coefficient(frozenset(q.name_tokens), frozenset(d.name_tokens))


def prefix_ratio(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Shared-prefix length over the shorter name's length."""
    if q.is_wildcard:
        return 0.0
    return common_prefix_ratio(q.name_lower, d.name_lower)


def suffix_ratio(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Shared-suffix length over the shorter name's length."""
    if q.is_wildcard:
        return 0.0
    return common_suffix_ratio(q.name_lower, d.name_lower)


def containment(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 if one name contains the other as a substring."""
    if q.is_wildcard or not q.name_lower or not d.name_lower:
        return 0.0
    if q.name_lower in d.name_lower or d.name_lower in q.name_lower:
        return 1.0
    return 0.0


def first_token_equal(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 if the first name tokens match ("Brad" vs "Brad Pitt")."""
    if not q.name_tokens or not d.name_tokens:
        return 0.0
    return 1.0 if q.name_tokens[0] == d.name_tokens[0] else 0.0


def last_token_equal(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 if the last name tokens match (surname match)."""
    if not q.name_tokens or not d.name_tokens:
        return 0.0
    return 1.0 if q.name_tokens[-1] == d.name_tokens[-1] else 0.0


def query_token_coverage(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Fraction of query tokens present among the data node's tokens."""
    if not q.name_tokens:
        return 0.0
    hits = sum(1 for t in q.name_tokens if t in d.token_set)
    return hits / len(q.name_tokens)


def data_token_coverage(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Fraction of data name tokens present among the query's tokens."""
    if not d.name_tokens:
        return 0.0
    hits = sum(1 for t in d.name_tokens if t in q.token_set)
    return hits / len(d.name_tokens)


def bigram_jaccard(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Jaccard of character bigram sets of the names."""
    if q.is_wildcard:
        return 0.0
    return jaccard(q.bigrams, d.bigrams)


def trigram_jaccard(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Jaccard of character trigram sets of the names."""
    if q.is_wildcard:
        return 0.0
    return jaccard(q.trigrams, d.trigrams)


def soundex_first_token(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 if the Soundex codes of the first tokens agree."""
    if not q.soundex_first or not d.soundex_first:
        return 0.0
    return 1.0 if q.soundex_first == d.soundex_first else 0.0


def phonetic_name(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Edit similarity of simplified phonetic keys of the whole names."""
    if q.is_wildcard or not q.phonetic or not d.phonetic:
        return 0.0
    return edit_similarity(q.phonetic, d.phonetic)


def _acronym_of(short: Descriptor, long: Descriptor) -> float:
    """1.0 if *short*'s single compact token spells *long*'s initials."""
    if len(short.name_tokens) != 1 or len(long.name_tokens) < 2:
        return 0.0
    token = short.name_tokens[0]
    return 1.0 if 2 <= len(token) <= 6 and token == long.initials else 0.0


def acronym_forward(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Query is an acronym of the data name ("jj" ~ "Jacob Jones")."""
    return _acronym_of(q, d)


def acronym_backward(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Data name is an acronym of the query."""
    return _acronym_of(d, q)


def abbreviation_tokens(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Fraction of query tokens that abbreviate (or expand) a data token."""
    if not q.name_tokens or not d.name_tokens:
        return 0.0
    hits = 0
    for qt in q.name_tokens:
        if any(
            ontology.is_abbreviation_of(qt, dt) or ontology.is_abbreviation_of(dt, qt)
            for dt in d.name_tokens
        ):
            hits += 1
    return hits / len(q.name_tokens)


def initials_similarity(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Edit similarity of the two names' initials strings.

    Catches "J.J. Abrams" vs "Jeffrey Jacob Abrams" (both yield "jja").
    """
    if q.is_wildcard or not q.initials or not d.initials:
        return 0.0
    return edit_similarity(q.initials, d.initials)


def best_token_edit(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Average, over query tokens, of the best edit similarity to any data token."""
    if not q.name_tokens or not d.name_tokens:
        return 0.0
    total = 0.0
    for qt in q.name_tokens:
        total += max(edit_similarity(qt, dt) for dt in d.name_tokens)
    return total / len(q.name_tokens)


# ----------------------------------------------------------------------
# Synonym / ontology measures
# ----------------------------------------------------------------------

def synonym_token(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Fraction of query tokens with a synonym among the data tokens."""
    if not q.name_tokens:
        return 0.0
    hits = 0
    for qt in q.name_tokens:
        syns = ontology.synonyms_of(qt)
        if syns and (syns & d.token_set):
            hits += 1
    return hits / len(q.name_tokens)


def synset_jaccard(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Jaccard of synonym-expanded token sets."""
    def expand(tokens):
        out = set(tokens)
        for t in tokens:
            out |= ontology.synonyms_of(t)
        return frozenset(out)

    return jaccard(expand(q.token_set), expand(d.token_set))


def type_exact(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 iff both types are set and equal."""
    if not q.type or not d.type:
        return 0.0
    return 1.0 if q.type.lower() == d.type.lower() else 0.0


def type_synonym(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 if the types are synonyms (per the synonym table)."""
    if not q.type or not d.type:
        return 0.0
    return 1.0 if ontology.are_synonyms(q.type, d.type) else 0.0


def type_ontology(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Ontology proximity of the types: ``1 / (1 + distance)``."""
    if not q.type or not d.type:
        return 0.0
    distance = ontology.type_distance(q.type, d.type)
    if distance is None:
        return 0.0
    return 1.0 / (1.0 + distance)


def type_subsumption(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 if one type subsumes the other ("person" matches "actor")."""
    if not q.type or not d.type:
        return 0.0
    if ontology.is_subtype(d.type, q.type) or ontology.is_subtype(q.type, d.type):
        return 1.0
    return 0.0


def type_token_overlap(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Jaccard of type-label token sets (multi-word generated types).

    Types absent on both sides is *no evidence*, not a perfect match, so
    the both-empty case scores 0 here even though the ``jaccard``
    primitive itself is reflexive on empty sets.
    """
    if not q.type_tokens and not d.type_tokens:
        return 0.0
    return jaccard(q.type_tokens, d.type_tokens)


# ----------------------------------------------------------------------
# Keyword measures
# ----------------------------------------------------------------------

def keyword_jaccard(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Jaccard of the two keyword-token sets.

    Keywords absent on both sides is no evidence (scores 0), mirroring
    :func:`type_token_overlap`; the reflexive both-empty primitive only
    applies when the field is actually populated.
    """
    if not q.keyword_tokens and not d.keyword_tokens:
        return 0.0
    return jaccard(q.keyword_tokens, d.keyword_tokens)


def keyword_overlap(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Overlap coefficient of the keyword-token sets (both-absent = 0)."""
    if not q.keyword_tokens and not d.keyword_tokens:
        return 0.0
    return overlap_coefficient(q.keyword_tokens, d.keyword_tokens)


def keyword_in_name(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Fraction of query keywords that appear among data name tokens."""
    if not q.keyword_tokens:
        return 0.0
    name_tokens = frozenset(d.name_tokens)
    hits = sum(1 for t in q.keyword_tokens if t in name_tokens)
    return hits / len(q.keyword_tokens)


def name_in_keyword(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Fraction of query name tokens that appear among data keywords."""
    if not q.name_tokens:
        return 0.0
    hits = sum(1 for t in q.name_tokens if t in d.keyword_tokens)
    return hits / len(q.name_tokens)


# ----------------------------------------------------------------------
# Frequency / TF-IDF measures
# ----------------------------------------------------------------------

def tfidf_cosine(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """IDF-weighted cosine over the two token sets (binary TF)."""
    if not q.token_set or not d.token_set:
        return 0.0
    common = q.token_set & d.token_set
    if not common:
        return 0.0
    dot = sum(ctx.idf_of(t) ** 2 for t in common)
    norm_q = sum(ctx.idf_of(t) ** 2 for t in q.token_set) ** 0.5
    norm_d = sum(ctx.idf_of(t) ** 2 for t in d.token_set) ** 0.5
    # Clamp: identical sets can exceed 1.0 by a float epsilon.
    return min(1.0, dot / (norm_q * norm_d))


def idf_weighted_coverage(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """IDF-weighted fraction of query tokens covered by the data node."""
    if not q.token_set:
        return 0.0
    total = sum(ctx.idf_of(t) for t in q.token_set)
    if total == 0.0:
        return 0.0
    covered = sum(ctx.idf_of(t) for t in q.token_set if t in d.token_set)
    return covered / total


def rare_token_bonus(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """IDF of the rarest token the two descriptions share."""
    common = q.token_set & d.token_set
    if not common:
        return 0.0
    return max(ctx.idf_of(t) for t in common)


def length_ratio(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Name-length compatibility: shorter length over longer length."""
    if q.is_wildcard or not q.name_lower or not d.name_lower:
        return 0.0
    la, lb = len(q.name_lower), len(d.name_lower)
    return min(la, lb) / max(la, lb)


# ----------------------------------------------------------------------
# Numeric / unit measures
# ----------------------------------------------------------------------

def numeric_exact(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 if the descriptions share a numeric token (e.g. a year)."""
    if not q.numbers or not d.numbers:
        return 0.0
    return 1.0 if set(q.numbers) & set(d.numbers) else 0.0


def numeric_close(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Best relative closeness between any two numeric tokens."""
    if not q.numbers or not d.numbers:
        return 0.0
    best = 0.0
    for x in q.numbers:
        for y in d.numbers:
            denom = max(abs(x), abs(y), 1.0)
            best = max(best, 1.0 - min(1.0, abs(x - y) / denom))
    return best


def unit_convert_match(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 if ``<number> <unit>`` phrases agree after unit conversion.

    Looks for a numeric token directly followed by a unit token on each
    side ("5 km" vs "5000 m").
    """
    q_pairs = _measurements(q)
    d_pairs = _measurements(d)
    if not q_pairs or not d_pairs:
        return 0.0
    for qu, qv in q_pairs:
        for du, dv in d_pairs:
            if not ontology.units_comparable(qu, du):
                continue
            qc = ontology.to_canonical(qv, qu)
            dc = ontology.to_canonical(dv, du)
            if qc and dc and abs(qc[1] - dc[1]) <= 1e-6 * max(1.0, abs(qc[1])):
                return 1.0
    return 0.0


def _measurements(desc: Descriptor) -> List[Tuple[str, float]]:
    pairs: List[Tuple[str, float]] = []
    tokens = desc.name_tokens
    for i in range(len(tokens) - 1):
        if tokens[i].isdigit():
            pairs.append((tokens[i + 1], float(tokens[i])))
    return pairs


# ----------------------------------------------------------------------
# Structural / wildcard measures
# ----------------------------------------------------------------------

def degree_prior(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Popularity prior: normalized log-degree of the data node.

    The "frequency" family of the paper's catalog -- prominent entities are
    more likely intended by ambiguous queries.
    """
    import math

    return min(1.0, math.log1p(d.degree) / ctx.log_max_degree)


def wildcard(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 when the query node is a variable ('?'); lets wildcards match."""
    return 1.0 if q.is_wildcard else 0.0


# ----------------------------------------------------------------------
# Edge (relation) measures
# ----------------------------------------------------------------------

def relation_exact(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 iff relation labels are equal."""
    return 1.0 if not q.is_wildcard and q.name_lower == d.name_lower else 0.0


def relation_synonym(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 if relation labels are synonyms ("won" ~ "recipient_of")."""
    if q.is_wildcard or not q.name_lower or not d.name_lower:
        return 0.0
    return 1.0 if ontology.are_synonyms(q.name_lower, d.name_lower) else 0.0


def relation_token_jaccard(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """Jaccard of relation-label token sets ("born_in" vs "lived_in")."""
    return jaccard(frozenset(q.name_tokens), frozenset(d.name_tokens))


def relation_wildcard(q: Descriptor, d: Descriptor, ctx: CorpusContext) -> float:
    """1.0 when the query edge is unconstrained."""
    return 1.0 if q.is_wildcard else 0.0


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------

NODE_FUNCTIONS: List[Tuple[str, SimilarityFn]] = [
    ("exact_name", exact_name),
    ("name_edit", name_edit),
    ("name_jaro_winkler", name_jaro_winkler),
    ("token_jaccard", token_jaccard),
    ("token_dice", token_dice),
    ("token_overlap", token_overlap),
    ("prefix_ratio", prefix_ratio),
    ("suffix_ratio", suffix_ratio),
    ("containment", containment),
    ("first_token_equal", first_token_equal),
    ("last_token_equal", last_token_equal),
    ("query_token_coverage", query_token_coverage),
    ("data_token_coverage", data_token_coverage),
    ("bigram_jaccard", bigram_jaccard),
    ("trigram_jaccard", trigram_jaccard),
    ("soundex_first_token", soundex_first_token),
    ("phonetic_name", phonetic_name),
    ("acronym_forward", acronym_forward),
    ("acronym_backward", acronym_backward),
    ("abbreviation_tokens", abbreviation_tokens),
    ("initials_similarity", initials_similarity),
    ("best_token_edit", best_token_edit),
    ("synonym_token", synonym_token),
    ("synset_jaccard", synset_jaccard),
    ("type_exact", type_exact),
    ("type_synonym", type_synonym),
    ("type_ontology", type_ontology),
    ("type_subsumption", type_subsumption),
    ("type_token_overlap", type_token_overlap),
    ("keyword_jaccard", keyword_jaccard),
    ("keyword_overlap", keyword_overlap),
    ("keyword_in_name", keyword_in_name),
    ("name_in_keyword", name_in_keyword),
    ("tfidf_cosine", tfidf_cosine),
    ("idf_weighted_coverage", idf_weighted_coverage),
    ("rare_token_bonus", rare_token_bonus),
    ("length_ratio", length_ratio),
    ("numeric_exact", numeric_exact),
    ("numeric_close", numeric_close),
    ("unit_convert_match", unit_convert_match),
    ("degree_prior", degree_prior),
    ("wildcard", wildcard),
]

EDGE_FUNCTIONS: List[Tuple[str, SimilarityFn]] = [
    ("relation_exact", relation_exact),
    ("relation_synonym", relation_synonym),
    ("relation_token_jaccard", relation_token_jaccard),
    ("relation_wildcard", relation_wildcard),
]

#: Total measure count matches the paper's "46 similarity functions".
TOTAL_FUNCTIONS = len(NODE_FUNCTIONS) + len(EDGE_FUNCTIONS)

#: A cheap subset used by the benchmark harness's fast scoring mode: these
#: avoid the quadratic string measures while preserving ranking behaviour.
FAST_NODE_FUNCTION_NAMES: Tuple[str, ...] = (
    "exact_name",
    "token_jaccard",
    "first_token_equal",
    "last_token_equal",
    "query_token_coverage",
    "synonym_token",
    "type_exact",
    "type_ontology",
    "keyword_jaccard",
    "idf_weighted_coverage",
    "degree_prior",
    "wildcard",
)
