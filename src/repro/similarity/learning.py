"""Learning the measure weights (the paper's "learned through training").

The paper reuses the probabilistic ranking function of [2], trained offline.
We reproduce the training loop: build a labelled corpus of (query
description, data description) pairs -- positives are systematic
perturbations of an entity description (token dropout, abbreviation,
synonym substitution, typos, acronyms), negatives are random other entities
-- featurize each pair with the 46 measures, fit a logistic-regression
model by gradient descent (numpy), and convert the learned coefficients to
the non-negative normalized weights :class:`repro.similarity.scoring.
ScoringFunction` consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.similarity.descriptors import CorpusContext, Descriptor, DescriptorCache
from repro.similarity.functions import NODE_FUNCTIONS
from repro.similarity import ontology


@dataclass
class TrainingExample:
    """One labelled pair: query-side descriptor vs data-side descriptor."""

    query: Descriptor
    data: Descriptor
    label: int  # 1 = same entity, 0 = different


def perturb_description(desc: Descriptor, rng: random.Random) -> Descriptor:
    """Generate a query-style rewriting of *desc* (positive example).

    Applies one of the transformation families the measure catalog covers:
    partial name (drop tokens), typo (edit distance), synonym substitution,
    acronym, keyword-only reference, or type-only constraint.
    """
    tokens = list(desc.name_tokens)
    move = rng.random()
    if move < 0.25 and len(tokens) >= 2:
        # Partial name: keep a random non-empty strict subset, order kept.
        keep = sorted(rng.sample(range(len(tokens)), rng.randint(1, len(tokens) - 1)))
        name = " ".join(tokens[i] for i in keep)
    elif move < 0.45 and tokens:
        # Typo: drop or swap a character in one token.
        i = rng.randrange(len(tokens))
        t = tokens[i]
        if len(t) > 3:
            j = rng.randrange(len(t) - 1)
            t = t[:j] + t[j + 1 :]
        tokens[i] = t
        name = " ".join(tokens)
    elif move < 0.6 and tokens:
        # Synonym substitution where the table allows.
        replaced = []
        for t in tokens:
            syns = sorted(ontology.synonyms_of(t) - {t})
            replaced.append(rng.choice(syns) if syns else t)
        name = " ".join(replaced)
    elif move < 0.7 and len(tokens) >= 2:
        # Acronym.
        name = "".join(t[0] for t in tokens)
    elif move < 0.85:
        name = desc.name  # exact reference
    else:
        # Reordered tokens (e.g. "Pitt Brad").
        rng.shuffle(tokens)
        name = " ".join(tokens) if tokens else desc.name
    q_type = desc.type if rng.random() < 0.5 else ""
    q_keywords = desc.keywords if rng.random() < 0.3 else ()
    return Descriptor(name, q_type, q_keywords)


def build_training_set(
    graph: KnowledgeGraph,
    num_pairs: int = 400,
    seed: int = 17,
) -> List[TrainingExample]:
    """Sample a balanced labelled pair corpus from *graph*."""
    rng = random.Random(seed)
    cache = DescriptorCache(graph)
    node_ids = list(graph.nodes())
    examples: List[TrainingExample] = []
    for _ in range(num_pairs // 2):
        target = rng.choice(node_ids)
        data = cache.get(target)
        examples.append(
            TrainingExample(perturb_description(data, rng), data, 1)
        )
        other = rng.choice(node_ids)
        while other == target and len(node_ids) > 1:
            other = rng.choice(node_ids)
        examples.append(
            TrainingExample(perturb_description(data, rng), cache.get(other), 0)
        )
    return examples


def featurize(
    examples: Sequence[TrainingExample], corpus: CorpusContext
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate all 42 node measures on each pair.

    Returns:
        ``(X, y)`` with ``X.shape == (n, 42)`` and binary labels ``y``.
    """
    rows = []
    labels = []
    for ex in examples:
        rows.append(
            [fn(ex.query, ex.data, corpus) for _name, fn in NODE_FUNCTIONS]
        )
        labels.append(ex.label)
    return np.asarray(rows, dtype=float), np.asarray(labels, dtype=float)


def fit_logistic(
    X: np.ndarray,
    y: np.ndarray,
    learning_rate: float = 0.5,
    epochs: int = 300,
    l2: float = 1e-3,
    seed: int = 3,
) -> np.ndarray:
    """Fit logistic-regression coefficients by full-batch gradient descent."""
    rng = np.random.default_rng(seed)
    n, p = X.shape
    w = rng.normal(0, 0.01, size=p)
    b = 0.0
    for _ in range(epochs):
        z = X @ w + b
        pred = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
        grad_w = X.T @ (pred - y) / n + l2 * w
        grad_b = float(np.mean(pred - y))
        w -= learning_rate * grad_w
        b -= learning_rate * grad_b
    return w


def coefficients_to_weights(coefficients: np.ndarray) -> Dict[str, float]:
    """Convert signed logistic coefficients to scoring weights.

    Negative coefficients (measures anti-correlated with a true match on
    this corpus) are clamped to zero; the rest keep their magnitude.  The
    scorer re-normalizes, so scale is irrelevant.
    """
    weights: Dict[str, float] = {}
    for (name, _fn), coef in zip(NODE_FUNCTIONS, coefficients):
        weights[name] = max(0.0, float(coef))
    if all(w == 0.0 for w in weights.values()):
        # Degenerate fit -- fall back to uniform so the scorer stays valid.
        weights = {name: 1.0 for name, _fn in NODE_FUNCTIONS}
    return weights


def learn_weights(
    graph: KnowledgeGraph,
    num_pairs: int = 400,
    seed: int = 17,
) -> Dict[str, float]:
    """End-to-end weight learning on *graph* (Section VII's training step).

    Returns a node-measure weight dict usable as
    ``ScoringConfig(node_weights=...)``.
    """
    examples = build_training_set(graph, num_pairs=num_pairs, seed=seed)
    corpus = CorpusContext.from_graph(graph)
    X, y = featurize(examples, corpus)
    coefficients = fit_logistic(X, y)
    return coefficients_to_weights(coefficients)


def evaluate_weights(
    graph: KnowledgeGraph,
    weights: Dict[str, float],
    num_pairs: int = 200,
    seed: int = 91,
) -> float:
    """Holdout accuracy of a weight vector (0.5 decision threshold on the
    normalized aggregate score).  Used by tests to check learning works."""
    from repro.similarity.scoring import ScoringConfig, ScoringFunction

    examples = build_training_set(graph, num_pairs=num_pairs, seed=seed)
    scorer = ScoringFunction(graph, ScoringConfig(node_weights=weights))
    corpus = scorer.corpus
    correct = 0
    for ex in examples:
        score = 0.0
        for fn, weight in scorer._node_measures:
            score += weight * fn(ex.query, ex.data, corpus)
        predicted = 1 if score >= 0.35 else 0
        correct += int(predicted == ex.label)
    return correct / len(examples)
