"""Synonym, ontology, abbreviation, acronym and unit tables.

The paper's ranking function (learned in [2]) supports "various kinds of
transformations such as synonym, abbreviation, and ontology", e.g. matching
"teacher" with "educator" or "J.J. Abrams" with "Jeffrey Jacob Abrams".
These tables are the knowledge those transformations consult.  They are
intentionally compact: the similarity *functions* are generic, the tables
seed them with enough coverage for the synthetic datasets and tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

# ----------------------------------------------------------------------
# Synonym groups (words in the same group are full synonyms).
# ----------------------------------------------------------------------
_SYNONYM_GROUPS: Tuple[Tuple[str, ...], ...] = (
    ("teacher", "educator", "instructor"),
    ("doctor", "physician"),
    ("lawyer", "attorney"),
    ("writer", "author", "novelist"),
    ("singer", "vocalist"),
    ("producer", "filmmaker"),
    ("movie", "film", "picture"),
    ("car", "automobile"),
    ("journalist", "reporter"),
    ("professor", "academic"),
    ("award", "prize", "honor"),
    ("actor", "performer"),
    ("director", "filmmaker"),
    ("composer", "songwriter"),
    ("big", "large"),
    ("city", "town"),
    ("company", "firm", "corporation"),
    ("won", "received", "recipient_of"),
    ("acted_in", "starred_in", "featured_in", "performed_in"),
    ("directed", "helmed"),
    ("born_in", "native_of"),
    ("works_for", "employed_by", "affiliated_with"),
    ("married_to", "spouse_of"),
    ("located_in", "based_in", "situated_in"),
    ("wrote", "authored", "penned"),
)

_SYNONYMS: Dict[str, FrozenSet[str]] = {}
for _group in _SYNONYM_GROUPS:
    members = frozenset(_group)
    for _word in _group:
        _SYNONYMS[_word] = _SYNONYMS.get(_word, frozenset()) | members


def synonyms_of(word: str) -> FrozenSet[str]:
    """Synonym set of *word* (includes the word itself; empty if unknown)."""
    return _SYNONYMS.get(word.lower(), frozenset())


def are_synonyms(a: str, b: str) -> bool:
    """True if *a* and *b* share a synonym group (case-insensitive)."""
    a, b = a.lower(), b.lower()
    if a == b:
        return True
    return b in _SYNONYMS.get(a, frozenset())


# ----------------------------------------------------------------------
# Type ontology: child type -> parent type.  Forms a forest.
# ----------------------------------------------------------------------
_TYPE_PARENT: Dict[str, str] = {
    "actor": "person",
    "director": "person",
    "producer": "person",
    "writer": "person",
    "musician": "person",
    "person": "agent",
    "organization": "agent",
    "film": "work",
    "album": "work",
    "book": "work",
    "series": "work",
    "award": "recognition",
    "place": "location",
    "city": "place",
    "venue": "place",
    "genre": "topic",
}


def type_ancestors(type_name: str) -> List[str]:
    """Chain of ancestors of *type_name*, nearest first (excludes itself)."""
    chain: List[str] = []
    current = type_name.lower()
    seen = {current}
    while current in _TYPE_PARENT:
        current = _TYPE_PARENT[current]
        if current in seen:  # pragma: no cover - guards table cycles
            break
        seen.add(current)
        chain.append(current)
    return chain


def type_distance(a: str, b: str) -> Optional[int]:
    """Ontology distance between two types (0 if equal).

    Distance is hops to the closest common ancestor, counted on both sides.
    Returns None when the types share no ancestor.
    """
    a, b = a.lower(), b.lower()
    if a == b:
        return 0
    chain_a = [a] + type_ancestors(a)
    chain_b = [b] + type_ancestors(b)
    index_b = {t: i for i, t in enumerate(chain_b)}
    best: Optional[int] = None
    for i, t in enumerate(chain_a):
        j = index_b.get(t)
        if j is not None:
            d = i + j
            if best is None or d < best:
                best = d
    return best


def is_subtype(child: str, parent: str) -> bool:
    """True if *child* equals *parent* or descends from it in the ontology."""
    child, parent = child.lower(), parent.lower()
    return child == parent or parent in type_ancestors(child)


# ----------------------------------------------------------------------
# Abbreviations (short form -> long form).  Checked both directions.
# ----------------------------------------------------------------------
_ABBREVIATIONS: Dict[str, str] = {
    "intl": "international",
    "natl": "national",
    "univ": "university",
    "inst": "institute",
    "dept": "department",
    "assn": "association",
    "bros": "brothers",
    "corp": "corporation",
    "inc": "incorporated",
    "ltd": "limited",
    "mt": "mountain",
    "st": "saint",
    "dr": "doctor",
    "prof": "professor",
    "gov": "government",
    "acad": "academy",
    "fdn": "foundation",
    "ent": "entertainment",
    "prod": "production",
}


def expand_abbreviation(token: str) -> Optional[str]:
    """Long form of an abbreviation token, or None."""
    return _ABBREVIATIONS.get(token.lower().rstrip("."))


def is_abbreviation_of(short: str, long: str) -> bool:
    """True if *short* is a known or prefix-style abbreviation of *long*."""
    short = short.lower().rstrip(".")
    long = long.lower()
    if short == long:
        return False
    expanded = _ABBREVIATIONS.get(short)
    if expanded == long:
        return True
    # Prefix-style abbreviation: "prod" ~ "production" (>= 3 chars, strict
    # prefix, long at least 2 chars longer).
    return (
        len(short) >= 3
        and len(long) >= len(short) + 2
        and long.startswith(short)
    )


# ----------------------------------------------------------------------
# Unit conversions: (unit, canonical_unit, factor).
# ----------------------------------------------------------------------
_UNITS: Dict[str, Tuple[str, float]] = {
    "km": ("m", 1000.0),
    "m": ("m", 1.0),
    "cm": ("m", 0.01),
    "mi": ("m", 1609.344),
    "ft": ("m", 0.3048),
    "kg": ("g", 1000.0),
    "g": ("g", 1.0),
    "lb": ("g", 453.592),
    "oz": ("g", 28.3495),
    "min": ("s", 60.0),
    "s": ("s", 1.0),
    "h": ("s", 3600.0),
    "hr": ("s", 3600.0),
}


def to_canonical(value: float, unit: str) -> Optional[Tuple[str, float]]:
    """Convert ``value unit`` to ``(canonical_unit, canonical_value)``."""
    entry = _UNITS.get(unit.lower())
    if entry is None:
        return None
    canonical, factor = entry
    return canonical, value * factor


def units_comparable(unit_a: str, unit_b: str) -> bool:
    """True if both units convert to the same canonical dimension."""
    ea, eb = _UNITS.get(unit_a.lower()), _UNITS.get(unit_b.lower())
    return ea is not None and eb is not None and ea[0] == eb[0]
