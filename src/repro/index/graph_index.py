"""``GraphIndex``: the compact graph kernels behind indexed candidate
generation.

One instance per :class:`~repro.graph.knowledge_graph.KnowledgeGraph`
bundles the four array-backed structures of :mod:`repro.index` --

* :class:`~repro.index.vocab.Vocabulary` (token interning + IDF),
* :class:`~repro.index.postings.PostingIndex` (inverted index),
* :class:`~repro.index.csr.CSRAdjacency` (packed adjacency), and
* :class:`~repro.index.features.NodeFeatures` (bound features)

-- and keeps them synchronized with the graph through the delta journal
(:meth:`refresh`): node adds append, removals tombstone, edge mutations
dirty CSR rows, and compaction/rebuild thresholds bound the garbage.

:meth:`candidates` is the WAND-style generator that replaces the linear
shortlist scan in ``repro.core.candidates`` when a :class:`GraphIndex`
is attached to a scorer (:func:`attach_index`): it walks the posting
lists of the expanded query tokens accumulating per-node probe masks,
upper-bounds every candidate with the :class:`~repro.index.bounds.
QueryPlan`, and evaluates candidates in decreasing-bound order until
the bound falls strictly below max(node threshold, current k-th best
admissible score).

**Exactness.**  The candidate universe (postings union + subtype
closure) equals the linear shortlist by construction.  Real scores come
from the *same* memoized ``scorer.node_score``; only the evaluation
order and the cutoff differ.  A skipped candidate ``v`` satisfies
``score(v) <= bound(v) < kth``, i.e. at least ``limit`` nodes score
*strictly* higher, so ``v`` cannot appear in the linear path's
top-``limit`` under the ``(-score, node_id)`` tie-break; with the bound
below the threshold it would be filtered out anyway.  Ties at the k-th
score are never skipped (the cutoff comparison is strict), so the
tie-break still sees every contender.  Sorting the evaluated admissible
pairs and truncating therefore reproduces the linear results
byte-for-byte.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro import obs
from repro.core.candidates import expanded_query_tokens
from repro.index.bounds import QueryPlan, selected_node_weights
from repro.index.csr import CSRAdjacency
from repro.index.features import NodeFeatures
from repro.index.postings import PostingIndex
from repro.index.vocab import Vocabulary

#: Valid ``use_index`` modes: ``auto`` routes limited (top-k) unbudgeted
#: calls through the index, ``on`` routes every unbudgeted non-wildcard
#: call, ``off`` disables routing (linear scan, the seed path).
MODES = ("auto", "on", "off")

_PLAN_CACHE_MAX = 1024


class NodeFootprint:
    """Candidate-node dependency footprint backed by live posting arrays.

    The candidate cache stores, per entry, the node ids whose mutation
    must invalidate it, and checks them with
    ``summary.nodes.isdisjoint(footprint)`` -- any iterable works.  This
    one *shares* the posting arrays instead of materializing a
    frozenset: iterating may over-report (tombstoned entries linger
    until compaction, appends grow the shared arrays), which can only
    cause a spurious invalidation, never a stale hit.  Shortlist
    *growth* beyond these arrays requires ``add_node``, which flags
    ``stats_changed`` and invalidates unconditionally.
    """

    __slots__ = ("_arrays", "_closure")

    def __init__(self, arrays, closure: FrozenSet[int]) -> None:
        self._arrays = tuple(arrays)
        self._closure = closure

    def __iter__(self) -> Iterator[int]:
        for arr in self._arrays:
            yield from arr
        yield from self._closure


class GraphIndex:
    """Compact kernels + pruned candidate generation for one graph."""

    def __init__(self, graph, mode: str = "auto") -> None:
        if mode not in MODES:
            raise ValueError(
                f"use_index mode must be one of {MODES}, got {mode!r}"
            )
        self.graph = graph
        self.mode = mode
        self.vocab = Vocabulary()
        self.csr = CSRAdjacency()
        #: Cumulative generator counters (mirrored as obs counters).
        self.postings_scanned = 0
        self.pruned = 0
        self.evaluated = 0
        self._plans: Dict[Tuple, QueryPlan] = {}
        self._rebuild()

    # -- construction / maintenance -------------------------------------
    def _rebuild(self) -> None:
        graph = self.graph
        self.postings = PostingIndex.build(graph, self.vocab)
        self.features = NodeFeatures.build(graph, self.vocab)
        self.csr.build(graph)
        self.vocab.idf_stale = True
        self._version = graph.version

    def refresh(self) -> bool:
        """Resynchronize with the graph via the delta journal.

        Walks the per-mutation :class:`~repro.dynamic.journal.Delta`
        entries (the merged summary erases membership detail once
        ``stats_changed`` is set, which node mutations always set):
        added nodes are appended to postings/features, removed nodes
        tombstoned, edge mutations mark CSR rows dirty (relabels --
        journalled without endpoints -- dirty the whole CSR).  Falls
        back to a full rebuild when the journal no longer covers the
        gap.  Returns True when anything changed.
        """
        graph = self.graph
        if graph.version == self._version:
            return False
        if graph.delta_since(self._version) is None:
            self._rebuild()
            self._plans.clear()
            return True
        postings = self.postings
        features = self.features
        csr = self.csr
        vocab = self.vocab
        stats = False
        for delta in graph.journal.entries():
            if delta.version <= self._version:
                continue
            if delta.stats_changed:
                stats = True
            kind = delta.kind
            if kind == "add_node":
                for nid in delta.nodes:
                    if nid in graph:
                        data = graph.node(nid)
                        postings.add_node(nid, data.tokens(), vocab)
                        features.set_node(nid, data, vocab)
                    # else: added then removed again before this refresh;
                    # the remove_node delta tombstones it (no-op here).
            elif kind == "remove_node":
                # ``nodes`` = the removed node plus its former neighbors.
                # Which is which can only be read off the *current* graph:
                # survivors had a degree change (CSR row stale), the rest
                # are gone (tombstone; idempotent for neighbors removed
                # by a later delta).
                for nid in delta.nodes:
                    if nid not in graph:
                        postings.kill(nid)
                csr.mark_dirty(delta.nodes)
            elif kind in ("add_edge", "remove_edge"):
                csr.mark_dirty(delta.nodes)
            elif kind == "update_edge":
                # Relabels journal relations only (by design: candidate
                # lists survive them), so no row targeting is possible.
                csr.mark_all_dirty()
            # update_node_attrs: name/type/keywords are immutable and
            # attrs are unindexed -- nothing to do.
        if stats:
            vocab.idf_stale = True
            self._plans.clear()
        slots = graph.num_node_slots
        postings.grow(slots)
        features.grow(slots)
        if postings.should_compact():
            postings.compact()
        if csr.should_rebuild(slots):
            csr.build(graph)
        self._version = graph.version
        return True

    def synced(self) -> bool:
        """True when the index matches the graph's current version.

        Readers that consult the packed arrays directly (the stark leaf
        fetch) must check this per access: a stale index has stale dirty
        sets, so even the row-fallback logic cannot be trusted until
        :meth:`refresh` runs.
        """
        return self._version == self.graph.version

    @classmethod
    def attach_mmap(cls, source, graph, mode: str = "auto") -> "GraphIndex":
        """Attach the index columns of an ``RKGS2`` store (zero-copy).

        *source* is a store path, an open
        :class:`~repro.store.StoreReader`, or an mmap-backed graph; see
        :func:`repro.store.attach_mmap_index`.  The returned index is
        read-only (pinned at the store's graph version).
        """
        from repro.store.attach import attach_mmap_index

        return attach_mmap_index(source, graph, mode=mode)

    # -- candidate generation -------------------------------------------
    def eligible(self, scorer, desc, limit: Optional[int],
                 budget) -> bool:
        """Should this call route through the index?

        Budgeted calls stay linear (budget charging is observable
        behavior tied to shortlist iteration), wildcards stay linear
        (they scan every node with a flat formula -- nothing to prune),
        and ``auto`` only engages when a top-``limit`` cutoff gives the
        bound walk something to beat.
        """
        if self.mode == "off" or budget is not None or desc.is_wildcard:
            return False
        if scorer.graph is not self.graph:
            return False
        return self.mode == "on" or limit is not None

    def _plan_for(self, scorer, desc) -> QueryPlan:
        key = (scorer.fingerprint, desc.cache_key)
        plan = self._plans.get(key)
        if plan is None:
            if len(self._plans) >= _PLAN_CACHE_MAX:
                self._plans.clear()
            plan = QueryPlan(
                desc,
                sorted(expanded_query_tokens(desc)),
                selected_node_weights(scorer.config),
                self.vocab,
                self.features,
                scorer.corpus,
            )
            self._plans[key] = plan
        return plan

    def candidates(
        self, scorer, qnode, limit: Optional[int]
    ) -> Tuple[List[Tuple[int, float]], NodeFootprint]:
        """Scored admissible candidates for *qnode*, pruned by bounds.

        Returns ``(pairs, footprint)`` where *pairs* -- once sorted by
        ``(-score, node_id)`` and truncated to *limit* -- are identical
        to the linear path's result, and *footprint* is the cache
        dependency set (see :class:`NodeFootprint`).  The caller is
        responsible for the final sort/truncate (mirroring
        ``node_candidates``).
        """
        graph = self.graph
        desc = qnode.descriptor
        threshold = scorer.config.node_threshold
        if self.vocab.idf_stale:
            self.vocab.refresh_idf(scorer.corpus)
        plan = self._plan_for(scorer, desc)
        postings = self.postings
        alive = postings.alive
        adj = graph._adj

        masks: Dict[int, int] = {}
        scanned = 0
        for bit, tid in enumerate(plan.probe_tids):
            arr = postings.posting(tid)
            scanned += len(arr)
            flag = 1 << bit
            for nid in arr:
                if alive[nid]:
                    masks[nid] = masks.get(nid, 0) | flag
        closure: FrozenSet[int] = (
            graph.nodes_of_subtype(qnode.type) if qnode.type
            else frozenset()
        )
        for nid in closure:
            if nid not in masks:
                masks[nid] = 0

        bound = plan.bound
        order = sorted(
            (-bound(nid, mask, len(adj[nid])), nid)
            for nid, mask in masks.items()
        )
        scored: List[Tuple[int, float]] = []
        heap: List[float] = []
        node_score = scorer.node_score
        evaluated = 0
        for neg_ub, nid in order:
            ub = -neg_ub
            if ub < threshold:
                break
            if limit is not None and len(heap) == limit and ub < heap[0]:
                break
            evaluated += 1
            score = node_score(desc, nid)
            if score >= threshold:
                scored.append((nid, score))
                if limit is not None:
                    if len(heap) < limit:
                        heapq.heappush(heap, score)
                    elif score > heap[0]:
                        heapq.heapreplace(heap, score)
        pruned = len(order) - evaluated
        self.postings_scanned += scanned
        self.pruned += pruned
        self.evaluated += evaluated
        obs.count("index.postings_scanned", scanned)
        obs.count("index.pruned", pruned)
        obs.count("index.evaluated", evaluated)
        footprint = NodeFootprint(
            (postings.posting(tid) for tid in plan.probe_tids), closure
        )
        return scored, footprint

    # -- introspection ---------------------------------------------------
    def nbytes(self) -> int:
        """Approximate footprint of the packed structures in bytes."""
        return (
            self.postings.entry_count() * 4
            + len(self.postings.alive)
            + self.csr.nbytes()
        )

    def __repr__(self) -> str:
        return (
            f"GraphIndex(mode={self.mode!r}, tokens={len(self.vocab)}, "
            f"postings~{self.postings.entry_count()}, "
            f"v{self._version})"
        )


def attach_index(scorer, index: Optional[GraphIndex] = None,
                 mode: str = "auto") -> GraphIndex:
    """Attach a :class:`GraphIndex` to *scorer* and return it.

    Builds one over the scorer's graph when none is supplied.  Like
    ``attach_cache``, attaching is an explicit opt-in; a detached scorer
    (``graph_index is None``) keeps the seed's exact linear code path.
    """
    if index is None:
        index = GraphIndex(scorer.graph, mode=mode)
    scorer.graph_index = index
    return index


def detach_index(scorer) -> Optional[GraphIndex]:
    """Detach and return *scorer*'s index (restores the linear path)."""
    index = getattr(scorer, "graph_index", None)
    scorer.graph_index = None
    return index
