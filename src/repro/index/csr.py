"""CSR adjacency: compact neighbor/relation arrays for the leaf fetch.

``KnowledgeGraph`` stores adjacency as one Python list of ``(nbr,
edge_id)`` tuples per node, and reading an incident relation label costs
an edge-table lookup plus attribute access per edge.  The CSR form packs
the same information into three flat arrays::

    indptr[v] .. indptr[v+1]   ->  the slice of v's incident edges
    indices[i]                 ->  neighbor node id
    rels[i]                    ->  interned relation-label id
    dirs[i]                    ->  1 if the stored edge leaves v, else 0

Entries appear in exactly ``graph.neighbors(v)`` order.  Because the
graph appends to its undirected and directed lists together and removals
preserve relative order, filtering a CSR row by the direction flag
reproduces ``out_neighbors(v)`` / ``in_neighbors(v)`` order too -- so
the stark leaf provider's grouped relation maps (whose insertion order
feeds the deterministic leaf-list tie-break) come out byte-identical.

Maintenance is row-dirty: an edge mutation marks both endpoints dirty
and reads of a dirty (or post-build) row fall back to the live graph;
past a threshold the whole structure is rebuilt.  Relation *relabels*
(``update_edge``) are journalled without endpoints, so they mark the
entire CSR dirty -- rare in practice, and a full rebuild is linear.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Set, Tuple

#: Rebuild once more than this fraction of nodes have dirty rows.
REBUILD_DIRTY_FRACTION = 0.125
_REBUILD_MIN_DIRTY = 64


class CSRAdjacency:
    """Compressed sparse rows over the undirected adjacency."""

    __slots__ = ("indptr", "indices", "rels", "dirs",
                 "rel_ids", "rel_strings", "dirty", "all_dirty")

    def __init__(self) -> None:
        self.indptr = array("I", [0])
        self.indices = array("I")
        self.rels = array("I")
        self.dirs = array("B")
        self.rel_ids: Dict[str, int] = {}
        self.rel_strings: List[str] = []
        #: Nodes whose packed row is stale (edge added/removed since build).
        self.dirty: Set[int] = set()
        self.all_dirty = False

    # -- construction ---------------------------------------------------
    def _rel_id(self, relation: str) -> int:
        rid = self.rel_ids.get(relation)
        if rid is None:
            rid = len(self.rel_strings)
            self.rel_ids[relation] = rid
            self.rel_strings.append(relation)
        return rid

    def build(self, graph) -> None:
        """(Re)pack the arrays from the live graph."""
        slots = graph.num_node_slots
        indptr = array("I", bytes(4 * (slots + 1)))
        indices = array("I")
        rels = array("I")
        dirs = array("B")
        edges = graph._edges
        adj = graph._adj
        pos = 0
        for v in range(slots):
            for nbr, eid in adj[v]:
                record = edges[eid]
                indices.append(nbr)
                rels.append(self._rel_id(record[2].relation))
                dirs.append(1 if record[0] == v else 0)
                pos += 1
            indptr[v + 1] = pos
        self.indptr = indptr
        self.indices = indices
        self.rels = rels
        self.dirs = dirs
        self.dirty.clear()
        self.all_dirty = False

    # -- maintenance ----------------------------------------------------
    def mark_dirty(self, nodes) -> None:
        self.dirty.update(nodes)

    def mark_all_dirty(self) -> None:
        self.all_dirty = True

    def should_rebuild(self, num_slots: int) -> bool:
        if self.all_dirty:
            return True
        dirty = len(self.dirty)
        if dirty < _REBUILD_MIN_DIRTY:
            return False
        return dirty > REBUILD_DIRTY_FRACTION * max(1, num_slots)

    def _packed(self, v: int) -> bool:
        """True when v's packed row is current."""
        return (not self.all_dirty and v not in self.dirty
                and v + 1 < len(self.indptr))

    # -- access ---------------------------------------------------------
    def grouped_relations(
        self, graph, v: int, directed: bool
    ) -> Tuple[Dict[int, List[str]], Dict[int, List[str]],
               Dict[int, List[str]]]:
        """Per-orientation ``neighbor -> [relation label, ...]`` maps.

        Returns ``(undirected, outgoing, incoming)`` -- the latter two
        populated only when *directed*.  Insertion order equals the
        corresponding live-graph neighbor-list order (see module doc).
        Falls back to the live graph for dirty rows, producing the same
        maps the packed path would.
        """
        grouped: Dict[int, List[str]] = {}
        out_grouped: Dict[int, List[str]] = {}
        in_grouped: Dict[int, List[str]] = {}
        if self._packed(v):
            start = self.indptr[v]
            end = self.indptr[v + 1]
            strings = self.rel_strings
            indices = self.indices
            rels = self.rels
            dirs = self.dirs
            for i in range(start, end):
                nbr = indices[i]
                rel = strings[rels[i]]
                grouped.setdefault(nbr, []).append(rel)
                if directed:
                    pool = out_grouped if dirs[i] else in_grouped
                    pool.setdefault(nbr, []).append(rel)
        else:
            edges = graph._edges
            for nbr, eid in graph.neighbors(v):
                record = edges[eid]
                grouped.setdefault(nbr, []).append(record[2].relation)
                if directed:
                    pool = out_grouped if record[0] == v else in_grouped
                    pool.setdefault(nbr, []).append(record[2].relation)
        return grouped, out_grouped, in_grouped

    def nbytes(self) -> int:
        """Approximate packed size in bytes (arrays only)."""
        return (self.indptr.itemsize * len(self.indptr)
                + self.indices.itemsize * len(self.indices)
                + self.rels.itemsize * len(self.rels)
                + len(self.dirs))
