"""Token-interning vocabulary: dense int ids for node/edge tokens.

Every token that appears in a node description (name, type or keyword
tokens -- exactly the set the graph's ``_token_index`` covers) is mapped
to a dense non-negative id.  Posting lists, feature arrays and query
plans all speak ids, so the hot candidate-generation path never hashes a
string twice, and per-token corpus statistics (IDF) live in one flat
``array('d')`` addressed by id.

The vocabulary is append-only: ids are never reused or remapped, so
structures that embed ids (postings, CSR relation ids, cached query
plans) stay valid across incremental maintenance.  IDF values *do*
drift whenever corpus statistics change (any node insert/remove); they
are refreshed wholesale from a :class:`~repro.similarity.descriptors.
CorpusContext` via :meth:`refresh_idf`, which the owning
:class:`~repro.index.graph_index.GraphIndex` calls lazily after a
``stats_changed`` delta.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional

#: Sentinel id meaning "no token" (e.g. a node whose name has no tokens).
NO_TOKEN = 0xFFFFFFFF


class Vocabulary:
    """Append-only token <-> dense-id intern table with per-id IDF."""

    __slots__ = ("_ids", "strings", "idf", "idf_stale")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        #: id -> token string (the canonical interned spelling).
        self.strings: List[str] = []
        #: id -> normalized IDF in (0, 1]; 1.0 until the first refresh.
        self.idf = array("d")
        self.idf_stale = True

    def __len__(self) -> int:
        return len(self.strings)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def intern(self, token: str) -> int:
        """Id of *token*, assigning the next dense id on first sight."""
        tid = self._ids.get(token)
        if tid is None:
            tid = len(self.strings)
            self._ids[token] = tid
            self.strings.append(token)
            self.idf.append(1.0)
        return tid

    def intern_many(self, tokens: Iterable[str]) -> List[int]:
        return [self.intern(token) for token in tokens]

    def get(self, token: str) -> Optional[int]:
        """Id of *token*, or None if it never appeared in the corpus."""
        return self._ids.get(token)

    def refresh_idf(self, corpus) -> None:
        """Reload every id's IDF from *corpus* (a ``CorpusContext``).

        Tokens unknown to the corpus (e.g. every occurrence tombstoned)
        keep the corpus default of 1.0 -- the same value
        ``CorpusContext.idf_of`` would serve, so plans built from this
        array agree with the linear scorer.
        """
        idf_of = corpus.idf_of
        idf = self.idf
        for tid, token in enumerate(self.strings):
            idf[tid] = idf_of(token)
        self.idf_stale = False
