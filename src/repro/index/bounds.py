"""Per-query score upper bounds: the "WAND" half of the indexed kernel.

For one query descriptor, a :class:`QueryPlan` precomputes everything the
candidate generator needs to bound ``F_N(q, v)`` for any data node *v*
from (a) which probe tokens *v*'s description contains -- a bitmask
accumulated while walking the posting lists -- and (b) a handful of
per-node feature ints (:class:`repro.index.features.NodeFeatures`).

The contract is the classic WAND one: ``plan.bound(v, mask, degree) >=
scorer.node_score(q, v)`` for every node, always.  Candidates are then
evaluated in decreasing-bound order and the walk stops once the bound
falls strictly below the current k-th best admissible score -- which
can never change the top-k result (see ``repro.index.graph_index`` for
the cutoff argument).  Every formula below is therefore derived from
the exact measure in :mod:`repro.similarity.functions`; measures that
depend only on features we store exactly (type family, first/last
token, initials, length ratio, degree prior) are *computed*, not
bounded, and memoized per distinct feature value.

Soundness hinges on one inequality used throughout: the probe bitmask
tells us which expanded query tokens appear among the node's *indexed*
tokens (name + type + keywords, what the inverted index covers), a
superset of the token sets the measures intersect (``token_set`` is
name + keywords; name-token sets are smaller still).  So every
"matched token" count derived from the mask is an upper bound on the
true intersection size each measure sees.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.features import HAS_MEASUREMENT, HAS_NUMBERS, NodeFeatures
from repro.index.vocab import NO_TOKEN, Vocabulary
from repro.similarity import ontology
from repro.similarity.descriptors import CorpusContext, Descriptor
from repro.similarity.functions import FAST_NODE_FUNCTION_NAMES, NODE_FUNCTIONS
from repro.similarity.strings import edit_similarity, jaccard, soundex
from repro.textutil import tokenize_tuple

#: Sentinel for "query token absent from the vocabulary" -- compares
#: unequal to every stored feature id including NO_TOKEN.
_NO_QUERY_TOKEN = -1


def selected_node_weights(config) -> Dict[str, float]:
    """Normalized node-measure weights for *config*.

    Mirrors ``ScoringFunction._select_node_measures`` exactly (same
    selection, same normalization), keyed by measure name; names not
    selected are absent (treated as weight 0 by the plan).
    """
    weights = config.node_weights
    names = (
        set(FAST_NODE_FUNCTION_NAMES) if config.fast else set(weights)
    )
    selected = [
        (name, weights.get(name, 0.0))
        for name, _fn in NODE_FUNCTIONS
        if name in names and weights.get(name, 0.0) > 0.0
    ]
    total = sum(w for _name, w in selected)
    return {name: w / total for name, w in selected}


class QueryPlan:
    """Precomputed upper-bound machinery for one (query, config) pair.

    Args:
        desc: the (non-wildcard) query descriptor.
        probe_tokens: the expanded query tokens, in a fixed order; token
            *i* owns bit ``1 << i`` of every node mask.  Tokens missing
            from the vocabulary get no bit (no node can contain them).
        weights: normalized measure weights (:func:`selected_node_weights`).
        vocab: the index vocabulary (probe token ids + IDF array).
        features: per-node feature arrays.
        corpus: the scorer's corpus context (IDF for query-side tokens
            that may not appear in the graph, degree normalizer).
    """

    def __init__(
        self,
        desc: Descriptor,
        probe_tokens: Sequence[str],
        weights: Dict[str, float],
        vocab: Vocabulary,
        features: NodeFeatures,
        corpus: CorpusContext,
    ) -> None:
        self._features = features
        self._vocab = vocab
        g = weights.get
        self.w_exact = g("exact_name", 0.0)
        self.w_edit = g("name_edit", 0.0)
        self.w_jaro = g("name_jaro_winkler", 0.0)
        self.w_tjac = g("token_jaccard", 0.0)
        self.w_tdice = g("token_dice", 0.0)
        self.w_tovl = g("token_overlap", 0.0)
        self.w_prefix = g("prefix_ratio", 0.0)
        self.w_suffix = g("suffix_ratio", 0.0)
        self.w_contain = g("containment", 0.0)
        self.w_first = g("first_token_equal", 0.0)
        self.w_last = g("last_token_equal", 0.0)
        self.w_qcov = g("query_token_coverage", 0.0)
        self.w_dcov = g("data_token_coverage", 0.0)
        self.w_bigram = g("bigram_jaccard", 0.0)
        self.w_trigram = g("trigram_jaccard", 0.0)
        self.w_soundex = g("soundex_first_token", 0.0)
        self.w_phon = g("phonetic_name", 0.0)
        self.w_acrof = g("acronym_forward", 0.0)
        self.w_acrob = g("acronym_backward", 0.0)
        self.w_initsim = g("initials_similarity", 0.0)
        self.w_best_edit = g("best_token_edit", 0.0)
        self.w_syn = g("synonym_token", 0.0)
        self.w_synset = g("synset_jaccard", 0.0)
        self.w_type_exact = g("type_exact", 0.0)
        self.w_type_syn = g("type_synonym", 0.0)
        self.w_type_ont = g("type_ontology", 0.0)
        self.w_type_sub = g("type_subsumption", 0.0)
        self.w_type_tok = g("type_token_overlap", 0.0)
        self.w_kjac = g("keyword_jaccard", 0.0)
        self.w_kovl = g("keyword_overlap", 0.0)
        self.w_kin = g("keyword_in_name", 0.0)
        self.w_nik = g("name_in_keyword", 0.0)
        self.w_tfidf = g("tfidf_cosine", 0.0)
        self.w_idfcov = g("idf_weighted_coverage", 0.0)
        self.w_rare = g("rare_token_bonus", 0.0)
        self.w_lenratio = g("length_ratio", 0.0)
        self.w_numeric = g("numeric_exact", 0.0) + g("numeric_close", 0.0)
        self.w_unit = g("unit_convert_match", 0.0)
        self.w_degree = g("degree_prior", 0.0)
        # ``wildcard`` scores 0 for the non-wildcard queries this plan
        # serves, so its weight never enters a bound.

        # -- probe tokens / per-bit constants ---------------------------
        name_set = frozenset(desc.name_tokens)
        name_mult: Dict[str, int] = {}
        for qt in desc.name_tokens:
            name_mult[qt] = name_mult.get(qt, 0) + 1
        eq_set = set(desc.token_set)
        for t in desc.token_set:
            eq_set |= ontology.synonyms_of(t)
        self._eq_size = len(eq_set)

        self.probe_tids: List[int] = []
        self._bit_in_name_set: List[bool] = []
        self._bit_name_mult: List[int] = []
        self._bit_in_kw: List[bool] = []
        self._bit_in_qset: List[bool] = []
        self._bit_idf: List[float] = []
        self._bit_synset_c: List[int] = []
        bit_of: Dict[str, int] = {}
        idf_arr = vocab.idf
        for token in probe_tokens:
            tid = vocab.get(token)
            if tid is None:
                continue  # no graph node contains it: no posting, no bit
            bit_of[token] = len(self.probe_tids)
            self.probe_tids.append(tid)
            self._bit_in_name_set.append(token in name_set)
            self._bit_name_mult.append(name_mult.get(token, 0))
            self._bit_in_kw.append(token in desc.keyword_tokens)
            self._bit_in_qset.append(token in desc.token_set)
            self._bit_idf.append(idf_arr[tid])
            self._bit_synset_c.append(
                len(({token} | ontology.synonyms_of(token)) & eq_set)
            )

        # exact_name needs every distinct query name token matched; a
        # query token no graph node contains makes it unsatisfiable.
        req = 0
        impossible = False
        for qt in name_set:
            bit = bit_of.get(qt)
            if bit is None:
                impossible = True
                break
            req |= 1 << bit
        self._name_req_mask = req
        self._exact_impossible = impossible

        # synonym_token: one mask per query name-token *position* whose
        # token has a synonym set; a hit needs any of those synonyms
        # (which always include the token itself) among the node's
        # tokens.  Positions whose synonyms all miss the vocabulary can
        # never hit.
        syn_masks: List[int] = []
        for qt in desc.name_tokens:
            syns = ontology.synonyms_of(qt)
            if not syns:
                continue
            m = 0
            for s in syns:
                bit = bit_of.get(s)
                if bit is not None:
                    m |= 1 << bit
            if m:
                syn_masks.append(m)
        self._syn_masks = syn_masks

        # -- query-side scalar constants --------------------------------
        self._q_type = desc.type
        self._q_type_tokens = desc.type_tokens
        self._lq = len(desc.name_lower)
        self._q_first_char = ord(desc.name_lower[0]) if desc.name_lower else -1
        self._q_last_char = ord(desc.name_lower[-1]) if desc.name_lower else -1
        self._n_q = len(name_set)
        self._len_tuple = len(desc.name_tokens)
        self._n_kw = len(desc.keyword_tokens)
        self._q_bi = len(desc.bigrams)
        self._q_tri = len(desc.trigrams)
        self._q_phon = len(desc.phonetic)
        self._q_soundex = desc.soundex_first
        self._q_initials = desc.initials
        self._q_has_numbers = bool(desc.numbers)
        self._q_has_meas = any(
            desc.name_tokens[i].isdigit()
            for i in range(len(desc.name_tokens) - 1)
        )
        first = desc.name_tokens[0] if desc.name_tokens else None
        self._q_first_tid = (
            vocab.get(first) if first is not None else None
        )
        if self._q_first_tid is None:
            self._q_first_tid = _NO_QUERY_TOKEN
        last = desc.name_tokens[-1] if desc.name_tokens else None
        self._q_last_tid = vocab.get(last) if last is not None else None
        if self._q_last_tid is None:
            self._q_last_tid = _NO_QUERY_TOKEN
        # acronym_forward: the query's single compact token vs the data
        # name's initials (exact, memoized per initials id).
        self._acro_fwd_token: Optional[str] = None
        if len(desc.name_tokens) == 1 and 2 <= len(desc.name_tokens[0]) <= 6:
            self._acro_fwd_token = desc.name_tokens[0]
        # acronym_backward: a single-token data name vs the query's
        # initials (exact, memoized per first-token id).
        self._acro_bwd_ok = (
            len(desc.name_tokens) >= 2 and 2 <= len(desc.initials) <= 6
        )
        # abbreviation_tokens: per query token, can *any* data token
        # abbreviate/expand it?  Prefix-style needs len >= 3 on the
        # short side (and >= 5 if the query token is the long side,
        # subsumed by >= 3); otherwise only a table hit can fire.
        if desc.name_tokens:
            possible = sum(
                1 for qt in desc.name_tokens
                if len(qt) >= 3 or ontology.expand_abbreviation(qt)
            )
            self._abb_const = (
                g("abbreviation_tokens", 0.0) * possible / len(desc.name_tokens)
            )
        else:
            self._abb_const = 0.0
        idf_of = corpus.idf_of
        self._norm_q = math.sqrt(
            sum(idf_of(t) ** 2 for t in desc.token_set)
        )
        self._total_idf = sum(idf_of(t) for t in desc.token_set)
        self._log_max = corpus.log_max_degree

        # -- memos -------------------------------------------------------
        self._mask_memo: Dict[int, Tuple] = {}
        self._type_memo: Dict[int, float] = {}
        self._soundex_memo: Dict[int, str] = {}
        self._initials_memo: Dict[int, float] = {}
        self._acrof_memo: Dict[int, bool] = {}
        self._acrob_memo: Dict[int, bool] = {}
        self._degree_memo: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def mask_for(self, tokens) -> int:
        """Probe bitmask a node with indexed *tokens* would accumulate
        (test/verification helper; the generator builds masks from the
        posting walk instead)."""
        vocab_get = self._vocab.get
        tids = {vocab_get(t) for t in tokens}
        mask = 0
        for bit, tid in enumerate(self.probe_tids):
            if tid in tids:
                mask |= 1 << bit
        return mask

    def _mask_stats(self, mask: int) -> Tuple:
        stats = self._mask_memo.get(mask)
        if stats is not None:
            return stats
        m_set = m_mult = m_kw = m_qset = 0
        idf_sum = idf_sq = idf_max = 0.0
        synset = 0
        in_name = self._bit_in_name_set
        mult = self._bit_name_mult
        in_kw = self._bit_in_kw
        in_qset = self._bit_in_qset
        idf = self._bit_idf
        syn_c = self._bit_synset_c
        m = mask
        while m:
            b = (m & -m).bit_length() - 1
            m &= m - 1
            if in_name[b]:
                m_set += 1
            m_mult += mult[b]
            if in_kw[b]:
                m_kw += 1
            if in_qset[b]:
                m_qset += 1
                v = idf[b]
                idf_sum += v
                idf_sq += v * v
                if v > idf_max:
                    idf_max = v
            synset += syn_c[b]
        syn_hits = 0
        for sm in self._syn_masks:
            if sm & mask:
                syn_hits += 1
        exact_ok = (
            not self._exact_impossible
            and (mask & self._name_req_mask) == self._name_req_mask
        )
        stats = (m_set, m_mult, m_kw, m_qset, idf_sum, idf_sq, idf_max,
                 synset, syn_hits, exact_ok)
        self._mask_memo[mask] = stats
        return stats

    def _type_contrib(self, type_id: int) -> float:
        """Exact weighted sum of the five type measures for one distinct
        data type (memoized per interned type id)."""
        val = self._type_memo.get(type_id)
        if val is not None:
            return val
        d_type = (
            self._features.pool_strings[type_id]
            if type_id != NO_TOKEN else ""
        )
        v = 0.0
        q_type = self._q_type
        if q_type and d_type:
            if self.w_type_exact and q_type.lower() == d_type.lower():
                v += self.w_type_exact
            if self.w_type_syn and ontology.are_synonyms(q_type, d_type):
                v += self.w_type_syn
            if self.w_type_ont:
                dist = ontology.type_distance(q_type, d_type)
                if dist is not None:
                    v += self.w_type_ont / (1.0 + dist)
            if self.w_type_sub and (
                ontology.is_subtype(d_type, q_type)
                or ontology.is_subtype(q_type, d_type)
            ):
                v += self.w_type_sub
        if self.w_type_tok:
            v += self.w_type_tok * jaccard(
                self._q_type_tokens, frozenset(tokenize_tuple(d_type))
            )
        self._type_memo[type_id] = v
        return v

    def _soundex_of(self, tid: int) -> str:
        code = self._soundex_memo.get(tid)
        if code is None:
            code = soundex(self._vocab.strings[tid])
            self._soundex_memo[tid] = code
        return code

    def _initials_sim(self, iid: int) -> float:
        val = self._initials_memo.get(iid)
        if val is None:
            d_init = self._features.pool_strings[iid]
            val = (
                edit_similarity(self._q_initials, d_init) if d_init else 0.0
            )
            self._initials_memo[iid] = val
        return val

    def _acro_forward(self, iid: int) -> bool:
        val = self._acrof_memo.get(iid)
        if val is None:
            val = self._features.pool_strings[iid] == self._acro_fwd_token
            self._acrof_memo[iid] = val
        return val

    def _acro_backward(self, tid: int) -> bool:
        val = self._acrob_memo.get(tid)
        if val is None:
            token = self._vocab.strings[tid]
            val = 2 <= len(token) <= 6 and token == self._q_initials
            self._acrob_memo[tid] = val
        return val

    # ------------------------------------------------------------------
    def bound(self, nid: int, mask: int, degree: int) -> float:
        """Upper bound on ``node_score(query, nid)``; clamped to 1.0 like
        the score itself."""
        f = self._features
        (m_set, m_mult, m_kw, m_qset, idf_sum, idf_sq, idf_max,
         synset, syn_hits, exact_ok) = self._mask_stats(mask)
        ub = self._type_contrib(f.type_id[nid])

        # Whole-name measures, from the stored name length.
        ld = f.name_len[nid]
        lq = self._lq
        if ld:
            longer = lq if lq > ld else ld
            shorter = lq + ld - longer
            # name_edit >= similarity is impossible beyond the length
            # gap; length_ratio equals the same ratio exactly.
            ub += (self.w_edit + self.w_lenratio) * (shorter / longer)
            ub += self.w_jaro + self.w_contain
            if exact_ok and ld == lq:
                ub += self.w_exact
            if f.first_char[nid] == self._q_first_char:
                ub += self.w_prefix
            if f.last_char[nid] == self._q_last_char:
                ub += self.w_suffix
        bd = f.bigram_count[nid]
        if bd and self._q_bi:
            hi = bd if bd > self._q_bi else self._q_bi
            ub += self.w_bigram * ((bd + self._q_bi - hi) / hi)
        td = f.trigram_count[nid]
        if td and self._q_tri:
            hi = td if td > self._q_tri else self._q_tri
            ub += self.w_trigram * ((td + self._q_tri - hi) / hi)
        pd = f.phon_len[nid]
        if pd and self._q_phon:
            longer = pd if pd > self._q_phon else self._q_phon
            shorter = pd + self._q_phon - longer
            ub += self.w_phon * (shorter / longer)

        # Name-token measures.
        ntd = f.name_token_count[nid]
        if self._len_tuple and m_mult:
            ub += self.w_qcov * (m_mult / self._len_tuple)
        if ntd:
            ub += self.w_best_edit + self._abb_const
            if m_qset:
                ub += self.w_dcov
        nd = f.distinct_name_count[nid]
        inter = m_set if m_set < nd else nd
        if inter:
            n_q = self._n_q
            ub += self.w_tjac * (inter / (n_q + nd - inter))
            ub += self.w_tdice * (2.0 * inter / (n_q + nd))
            ub += self.w_tovl * (inter / (n_q if n_q < nd else nd))
        ftid = f.first_tid[nid]
        if ftid != NO_TOKEN:
            if ftid == self._q_first_tid:
                ub += self.w_first
            if self.w_soundex and self._q_soundex:
                code = self._soundex_of(ftid)
                if code and code == self._q_soundex:
                    ub += self.w_soundex
            if (self._acro_bwd_ok and ntd == 1
                    and self._acro_backward(ftid)):
                ub += self.w_acrob
        ltid = f.last_tid[nid]
        if ltid != NO_TOKEN and ltid == self._q_last_tid:
            ub += self.w_last
        iid = f.initials_id[nid]
        if iid != NO_TOKEN:
            if self.w_initsim and self._q_initials:
                ub += self.w_initsim * self._initials_sim(iid)
            if (self._acro_fwd_token is not None and ntd >= 2
                    and self._acro_forward(iid)):
                ub += self.w_acrof

        # Synonyms.
        if syn_hits:
            ub += self.w_syn * (syn_hits / self._len_tuple)
        if synset and self._eq_size:
            r = synset / self._eq_size
            ub += self.w_synset * (r if r < 1.0 else 1.0)

        # Keywords.
        kd = f.kw_count[nid]
        n_kw = self._n_kw
        if kd and n_kw:
            ikw = m_kw if m_kw < kd else kd
            if ikw:
                ub += self.w_kjac * (ikw / (n_kw + kd - ikw))
                ub += self.w_kovl * (ikw / (n_kw if n_kw < kd else kd))
        if m_kw and n_kw:
            ub += self.w_kin * (m_kw / n_kw)
        if kd and m_mult:
            ub += self.w_nik * (m_mult / self._len_tuple)

        # TF-IDF family.
        if m_qset:
            v = math.sqrt(idf_sq) / self._norm_q
            ub += self.w_tfidf * (v if v < 1.0 else 1.0)
            if self._total_idf:
                ub += self.w_idfcov * (idf_sum / self._total_idf)
            ub += self.w_rare * idf_max

        # Numeric / measurement witnesses.
        flags = f.flags[nid]
        if self._q_has_numbers and flags & HAS_NUMBERS:
            ub += self.w_numeric
        if self._q_has_meas and flags & HAS_MEASUREMENT:
            ub += self.w_unit

        # Degree prior (exact).
        if self.w_degree:
            dv = self._degree_memo.get(degree)
            if dv is None:
                dv = math.log1p(degree) / self._log_max
                if dv > 1.0:
                    dv = 1.0
                self._degree_memo[degree] = dv
            ub += self.w_degree * dv
        return ub if ub < 1.0 else 1.0
