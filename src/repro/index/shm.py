"""Shared-memory export/attach of :class:`~repro.index.GraphIndex` columns.

The sharded execution layer (:mod:`repro.shard`) runs one fork worker
per shard.  Fork already shares the parent's Python object graph
copy-on-write, but CoW pages are *per-object* fragile: touching a
refcount dirties the page, so a large index slowly duplicates itself
across workers.  The numeric columns of a :class:`GraphIndex` -- IDF,
posting lists, the CSR adjacency, the per-node feature arrays -- are
exactly the big flat payloads worth pinning, so this module packs them
once into a single :class:`multiprocessing.shared_memory.SharedMemory`
segment and re-materializes *views* (no copies) in every worker:

* ``export_index`` writes every numeric column into one segment (one
  physical copy regardless of worker count) plus a small pickled string
  table (token spellings, relation labels, intern pools -- materialized
  per attach; strings cannot be viewed zero-copy);
* ``attach_shared_index`` rebuilds a read-only :class:`GraphIndex` whose
  arrays are ``memoryview`` casts into the segment.  Attached indexes
  serve the exact same candidates/leaf-fetch results as the original
  (same values, same orders) but refuse maintenance: the owning
  :class:`~repro.shard.ShardedEngine` guarantees workers only ever see
  the graph version the export was taken at.

Cleanup: the exporting process owns the segment.  ``SharedIndexColumns``
unlinks on :meth:`~SharedIndexColumns.unlink` and via a
``weakref.finalize`` safety net, so a dropped engine cannot leak
``/dev/shm`` space; workers merely ``close()`` their attach handle.
"""

from __future__ import annotations

import pickle
import secrets
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

from repro.index.csr import CSRAdjacency
from repro.index.features import NodeFeatures
from repro.index.graph_index import GraphIndex
from repro.index.postings import PostingIndex
from repro.index.vocab import Vocabulary

__all__ = ["ShmIndexHandle", "SharedIndexColumns", "attach_shared_index",
           "export_index", "SEGMENT_PREFIX"]

#: Every exported segment name starts with this (leak tests scan
#: ``/dev/shm`` for it).
SEGMENT_PREFIX = "reproshm"

_ALIGN = 8

#: ``(attribute path, typecode)`` of every numeric column, in layout
#: order.  Postings are concatenated into one data array plus offsets.
_FEATURE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("first_tid", "I"), ("last_tid", "I"), ("name_token_count", "I"),
    ("distinct_name_count", "I"), ("kw_count", "I"), ("name_len", "I"),
    ("bigram_count", "I"), ("trigram_count", "I"), ("phon_len", "I"),
    ("first_char", "I"), ("last_char", "I"), ("initials_id", "I"),
    ("type_id", "I"), ("flags", "B"),
)


@dataclass(frozen=True)
class ShmIndexHandle:
    """Picklable descriptor of an exported segment (send to workers)."""

    name: str
    #: column label -> (typecode, byte offset, byte length)
    layout: Dict[str, Tuple[str, int, int]]
    meta_offset: int
    meta_nbytes: int
    graph_uid: int
    graph_version: int
    mode: str
    nbytes: int = 0
    extras: Dict[str, object] = field(default_factory=dict)


def _pad(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedIndexColumns:
    """Owner side of an exported index segment (create/close/unlink)."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 handle: ShmIndexHandle) -> None:
        self.shm = shm
        self.handle = handle
        self._unlinked = False
        # Safety net: a garbage-collected owner must not leak /dev/shm.
        self._finalizer = weakref.finalize(
            self, _cleanup_segment, shm, handle.name
        )

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def close(self) -> None:
        """Release this process's mapping (the segment survives)."""
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        """Destroy the segment (idempotent); also closes the mapping."""
        if self._unlinked:
            return
        self._unlinked = True
        self._finalizer.detach()
        _cleanup_segment(self.shm, self.handle.name)


def _cleanup_segment(shm: shared_memory.SharedMemory, name: str) -> None:
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked (crash-path cleanup ran)
        pass
    except OSError:  # pragma: no cover - defensive
        pass


def export_index(index: GraphIndex, corpus=None,
                 name: Optional[str] = None) -> SharedIndexColumns:
    """Pack *index*'s numeric columns into one shared-memory segment.

    The index must be synced with its graph (callers refresh first);
    *corpus* (a ``CorpusContext``) resolves a stale IDF column before
    export so attached readers never need to write it.
    """
    if not index.synced():
        raise ValueError("export_index requires a refreshed (synced) index")
    if index.vocab.idf_stale:
        if corpus is None:
            raise ValueError(
                "index IDF is stale; pass corpus= so it can be refreshed "
                "before export (attached views are read-only)"
            )
        index.vocab.refresh_idf(corpus)

    postings = index.postings
    post_offsets: List[int] = [0]
    for arr in postings.postings:
        post_offsets.append(post_offsets[-1] + len(arr))

    from array import array

    columns: List[Tuple[str, str, bytes]] = [
        ("vocab.idf", "d", index.vocab.idf.tobytes()),
        ("postings.data", "I",
         b"".join(arr.tobytes() for arr in postings.postings)),
        ("postings.offsets", "Q", array("Q", post_offsets).tobytes()),
        ("postings.alive", "B", bytes(postings.alive)),
        ("csr.indptr", "I", index.csr.indptr.tobytes()),
        ("csr.indices", "I", index.csr.indices.tobytes()),
        ("csr.rels", "I", index.csr.rels.tobytes()),
        ("csr.dirs", "B", index.csr.dirs.tobytes()),
    ]
    for attr, code in _FEATURE_COLUMNS:
        columns.append(
            (f"features.{attr}", code,
             getattr(index.features, attr).tobytes())
        )

    meta = pickle.dumps({
        "vocab_strings": index.vocab.strings,
        "rel_strings": index.csr.rel_strings,
        "pool_strings": index.features.pool_strings,
        "live_nodes": postings.live_nodes,
        "dead_nodes": postings.dead_nodes,
    }, protocol=pickle.HIGHEST_PROTOCOL)

    layout: Dict[str, Tuple[str, int, int]] = {}
    offset = 0
    for label, code, payload in columns:
        offset = _pad(offset)
        layout[label] = (code, offset, len(payload))
        offset += len(payload)
    meta_offset = _pad(offset)
    total = max(1, meta_offset + len(meta))

    if name is None:
        name = f"{SEGMENT_PREFIX}_{secrets.token_hex(6)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    buf = shm.buf
    for label, code, payload in columns:
        _code, off, nbytes = layout[label]
        buf[off:off + nbytes] = payload
    buf[meta_offset:meta_offset + len(meta)] = meta

    handle = ShmIndexHandle(
        name=shm.name.lstrip("/"),
        layout=layout,
        meta_offset=meta_offset,
        meta_nbytes=len(meta),
        graph_uid=index.graph.uid,
        graph_version=index.graph.version,
        mode=index.mode,
        nbytes=total,
    )
    return SharedIndexColumns(shm, handle)


class AttachedGraphIndex(GraphIndex):
    """A read-only :class:`GraphIndex` whose columns live in shared
    memory.  Maintenance entry points are disabled: the owning engine
    re-exports after graph mutations instead of refreshing in place."""

    def __init__(self) -> None:  # constructed via attach_index only
        raise TypeError("use repro.index.shm.attach_shared_index")

    def refresh(self) -> bool:
        if self.graph.version == self._version:
            return False
        raise RuntimeError(
            "attached shared-memory index cannot refresh past graph "
            f"version {self._version} (graph is at {self.graph.version}); "
            "re-export instead"
        )

    def detach(self) -> None:
        """Drop every view and release this process's mapping.

        Callers must also drop any :class:`NodeFootprint` they kept from
        :meth:`candidates` first -- footprints wrap posting views, and a
        live exported pointer keeps the mapping open.
        """
        self.postings.postings = []
        self.postings.alive = bytearray()
        self._plans = {}
        self.vocab.idf = None
        self.csr.indptr = self.csr.indices = self.csr.rels = None
        self.csr.dirs = None
        for attr, _code in _FEATURE_COLUMNS:
            setattr(self.features, attr, None)
        shm = self._shm
        if shm is not None:
            self._shm = None
            try:
                shm.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass


def attach_shared_index(handle: ShmIndexHandle, graph) -> AttachedGraphIndex:
    """Materialize a read-only :class:`GraphIndex` over *handle*'s segment.

    *graph* must be the same logical graph (fork-inherited is the
    normal case) at the exact version the export was taken from.
    """
    if graph.uid != handle.graph_uid:
        raise ValueError(
            f"segment {handle.name} belongs to graph {handle.graph_uid}, "
            f"not {graph.uid}"
        )
    if graph.version != handle.graph_version:
        raise ValueError(
            f"segment {handle.name} was exported at graph version "
            f"{handle.graph_version}, but the graph is at {graph.version}"
        )
    shm = shared_memory.SharedMemory(name=handle.name)
    base = memoryview(shm.buf).toreadonly()

    def view(label: str):
        code, off, nbytes = handle.layout[label]
        return base[off:off + nbytes].cast(code)

    meta = pickle.loads(
        bytes(base[handle.meta_offset:
                   handle.meta_offset + handle.meta_nbytes])
    )

    vocab = Vocabulary()
    vocab.strings = list(meta["vocab_strings"])
    vocab._ids = {token: tid for tid, token in enumerate(vocab.strings)}
    vocab.idf = view("vocab.idf")
    vocab.idf_stale = False

    postings = PostingIndex()
    data = view("postings.data")
    offsets = view("postings.offsets")
    postings.postings = [
        data[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
    ]
    postings.alive = view("postings.alive")
    postings.live_nodes = meta["live_nodes"]
    postings.dead_nodes = meta["dead_nodes"]

    csr = CSRAdjacency()
    csr.indptr = view("csr.indptr")
    csr.indices = view("csr.indices")
    csr.rels = view("csr.rels")
    csr.dirs = view("csr.dirs")
    csr.rel_strings = list(meta["rel_strings"])
    csr.rel_ids = {rel: rid for rid, rel in enumerate(csr.rel_strings)}

    features = NodeFeatures()
    for attr, _code in _FEATURE_COLUMNS:
        setattr(features, attr, view(f"features.{attr}"))
    features.pool_strings = list(meta["pool_strings"])
    features.pool = {v: i for i, v in enumerate(features.pool_strings)}

    index = object.__new__(AttachedGraphIndex)
    index.graph = graph
    index.mode = handle.mode
    index.vocab = vocab
    index.postings = postings
    index.csr = csr
    index.features = features
    index.postings_scanned = 0
    index.pruned = 0
    index.evaluated = 0
    index._plans = {}
    index._version = handle.graph_version
    index._shm = shm
    return index
