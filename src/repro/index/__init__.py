"""``repro.index``: compact graph kernels for candidate generation.

The hottest path in every engine is candidate generation: for each
query node, shortlist plausible graph nodes and score them online
(Section V-A).  This package replaces the set-of-Python-objects
shortlist scan with array-backed kernels:

* :class:`Vocabulary` -- token interning (dense int ids + IDF),
* :class:`PostingIndex` -- ``token_id -> array('I')`` inverted index,
* :class:`CSRAdjacency` -- packed ``indptr``/``indices``/relation-id
  adjacency for the leaf fetch,
* :class:`NodeFeatures` -- per-node description features feeding
* :class:`QueryPlan` -- per-query score upper bounds (WAND-style), and
* :class:`GraphIndex` -- the bundle: journal-driven incremental
  maintenance plus the upper-bound-pruned candidate generator, which
  returns results byte-identical to the linear scan.

Attach to a scorer with :func:`attach_index`; route selection is the
``use_index`` mode (``auto`` | ``on`` | ``off``) exposed on the
:class:`repro.core.framework.Star` facade and the CLI.
"""

from repro.index.bounds import QueryPlan, selected_node_weights
from repro.index.csr import CSRAdjacency
from repro.index.features import NodeFeatures
from repro.index.graph_index import (
    MODES,
    GraphIndex,
    NodeFootprint,
    attach_index,
    detach_index,
)
from repro.index.postings import PostingIndex
from repro.index.shm import (
    SharedIndexColumns,
    ShmIndexHandle,
    attach_shared_index,
    export_index,
)
from repro.index.vocab import NO_TOKEN, Vocabulary

__all__ = [
    "CSRAdjacency",
    "GraphIndex",
    "MODES",
    "NO_TOKEN",
    "NodeFeatures",
    "NodeFootprint",
    "PostingIndex",
    "QueryPlan",
    "SharedIndexColumns",
    "ShmIndexHandle",
    "Vocabulary",
    "attach_index",
    "attach_shared_index",
    "detach_index",
    "export_index",
    "selected_node_weights",
]
