"""Inverted index: ``token_id -> sorted array('I') of node ids``.

A compact mirror of the graph's ``_token_index`` (which stores one
Python ``set`` per token): each posting list is an ``array('I')`` of
node ids in ascending order, about 4 bytes per entry instead of the
~32+ bytes a set slot costs.  The candidate generator walks these
arrays directly.

Incremental maintenance mirrors the delta journal:

* **appends** -- node ids are allocated densely and never reused, so a
  node added after the build has an id larger than every existing
  posting entry; appending keeps every list sorted with no re-sort;
* **tombstone masking** -- removals flip a bit in the shared ``alive``
  byte-map instead of rewriting every affected array.  Walks skip dead
  entries; correctness never depends on compaction;
* **compaction** -- once the dead fraction passes a threshold the
  arrays are rewritten without dead entries (fresh array objects; any
  older array still referenced, e.g. by a cache entry's dependency
  footprint, keeps its frozen contents, which is exactly the
  conservative superset those footprints want).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List

from repro.index.vocab import Vocabulary

_EMPTY = array("I")

#: Compact once more than this fraction of posting entries reference
#: tombstoned nodes (and at least ``_COMPACT_MIN_DEAD`` nodes died).
COMPACT_DEAD_FRACTION = 0.25
_COMPACT_MIN_DEAD = 64


class PostingIndex:
    """Array-backed inverted index over node descriptions."""

    __slots__ = ("postings", "alive", "dead_nodes", "live_nodes")

    def __init__(self) -> None:
        #: token id -> ascending ``array('I')`` of node ids.
        self.postings: List[array] = []
        #: node id -> 1 if live, 0 if tombstoned (indexed by slot).
        self.alive = bytearray()
        self.dead_nodes = 0
        self.live_nodes = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, graph, vocab: Vocabulary) -> "PostingIndex":
        """Build from the live graph (tombstones never enter the lists)."""
        index = cls()
        index.alive = bytearray(graph.num_node_slots)
        for node_id in graph.nodes():
            index.alive[node_id] = 1
            index.live_nodes += 1
        by_tid: Dict[int, array] = {}
        for token, members in graph._token_index.items():
            by_tid[vocab.intern(token)] = array("I", sorted(members))
        size = len(vocab)
        index.postings = [by_tid.get(tid, array("I")) for tid in range(size)]
        return index

    # -- access ---------------------------------------------------------
    def posting(self, tid: int) -> array:
        """Posting array for token id *tid* (may contain dead entries)."""
        if tid >= len(self.postings):
            return _EMPTY
        return self.postings[tid]

    def entry_count(self) -> int:
        return sum(len(arr) for arr in self.postings)

    # -- incremental maintenance ---------------------------------------
    def grow(self, num_slots: int) -> None:
        """Extend the alive map to cover *num_slots* node slots."""
        if num_slots > len(self.alive):
            self.alive.extend(b"\x00" * (num_slots - len(self.alive)))

    def add_node(self, node_id: int, tokens: Iterable[str],
                 vocab: Vocabulary) -> None:
        """Index a newly added node (its id exceeds every existing one)."""
        self.grow(node_id + 1)
        if self.alive[node_id]:
            return  # already indexed (idempotent replay)
        self.alive[node_id] = 1
        self.live_nodes += 1
        postings = self.postings
        for token in set(tokens):
            tid = vocab.intern(token)
            while tid >= len(postings):
                postings.append(array("I"))
            postings[tid].append(node_id)

    def kill(self, node_id: int) -> None:
        """Tombstone a removed node (postings are masked, not rewritten)."""
        if node_id < len(self.alive) and self.alive[node_id]:
            self.alive[node_id] = 0
            self.dead_nodes += 1
            self.live_nodes -= 1

    def should_compact(self) -> bool:
        dead = self.dead_nodes
        if dead < _COMPACT_MIN_DEAD:
            return False
        return dead > COMPACT_DEAD_FRACTION * max(1, self.live_nodes)

    def compact(self) -> None:
        """Rewrite every posting list without tombstoned entries.

        Allocates fresh arrays -- existing references (cache dependency
        footprints) keep seeing the pre-compaction contents.
        """
        alive = self.alive
        self.postings = [
            array("I", [nid for nid in arr if alive[nid]])
            for arr in self.postings
        ]
        self.dead_nodes = 0
