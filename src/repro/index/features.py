"""Per-node feature arrays consumed by the score upper bounds.

One flat array per feature, indexed by node id (slot), so the bound
evaluator reads a handful of ints per candidate instead of building (or
fetching) a full :class:`~repro.similarity.descriptors.Descriptor`.
Every feature is derived from the node's *immutable* description (name,
type, keywords), so rows are written once when a node is indexed and
never touched again; degree -- the one mutable input the bounds need --
is read live from the graph.

Strings the bounds compare exactly (type labels, initials) are interned
into a shared pool and stored as ids, letting query plans memoize exact
per-distinct-value measure evaluations (e.g. the full type-measure
family per distinct type id, acronym/initials matches per distinct
initials id).
"""

from __future__ import annotations

from array import array
from typing import Dict, List

from repro.index.vocab import NO_TOKEN, Vocabulary
from repro.similarity.strings import initials, ngrams, rough_phonetic
from repro.textutil import tokenize_tuple

#: Flag bits in :attr:`NodeFeatures.flags`.
HAS_NUMBERS = 1
HAS_MEASUREMENT = 2


class NodeFeatures:
    """Columnar per-node description features (see module doc)."""

    __slots__ = (
        "first_tid", "last_tid", "name_token_count", "distinct_name_count",
        "kw_count", "name_len", "bigram_count", "trigram_count", "phon_len",
        "first_char", "last_char", "initials_id", "type_id", "flags",
        "pool", "pool_strings",
    )

    def __init__(self) -> None:
        self.first_tid = array("I")
        self.last_tid = array("I")
        self.name_token_count = array("I")
        self.distinct_name_count = array("I")
        self.kw_count = array("I")
        self.name_len = array("I")
        self.bigram_count = array("I")
        self.trigram_count = array("I")
        self.phon_len = array("I")
        self.first_char = array("I")
        self.last_char = array("I")
        self.initials_id = array("I")
        self.type_id = array("I")
        self.flags = array("B")
        #: Shared intern pool for exact-compared strings (types, initials).
        self.pool: Dict[str, int] = {}
        self.pool_strings: List[str] = []

    def __len__(self) -> int:
        return len(self.flags)

    def intern(self, value: str) -> int:
        pid = self.pool.get(value)
        if pid is None:
            pid = len(self.pool_strings)
            self.pool[value] = pid
            self.pool_strings.append(value)
        return pid

    # ------------------------------------------------------------------
    def _append_blank(self) -> None:
        self.first_tid.append(NO_TOKEN)
        self.last_tid.append(NO_TOKEN)
        self.name_token_count.append(0)
        self.distinct_name_count.append(0)
        self.kw_count.append(0)
        self.name_len.append(0)
        self.bigram_count.append(0)
        self.trigram_count.append(0)
        self.phon_len.append(0)
        self.first_char.append(0)
        self.last_char.append(0)
        self.initials_id.append(NO_TOKEN)
        self.type_id.append(NO_TOKEN)
        self.flags.append(0)

    def grow(self, num_slots: int) -> None:
        """Pad with blank rows up to *num_slots* (tombstones stay blank)."""
        while len(self.flags) < num_slots:
            self._append_blank()

    def set_node(self, node_id: int, data, vocab: Vocabulary) -> None:
        """Fill node *node_id*'s row from its ``NodeData``.

        The derivations mirror ``Descriptor.__init__`` exactly -- the
        bounds must describe the same strings the measures will see.
        """
        self.grow(node_id + 1)
        name_lower = data.name.lower().strip()
        name_tokens = tokenize_tuple(data.name)
        if name_tokens:
            self.first_tid[node_id] = vocab.intern(name_tokens[0])
            self.last_tid[node_id] = vocab.intern(name_tokens[-1])
        self.name_token_count[node_id] = len(name_tokens)
        self.distinct_name_count[node_id] = len(set(name_tokens))
        self.kw_count[node_id] = len({
            t for kw in data.keywords for t in tokenize_tuple(kw)
        })
        self.name_len[node_id] = len(name_lower)
        self.bigram_count[node_id] = len(ngrams(name_lower, 2))
        self.trigram_count[node_id] = len(ngrams(name_lower, 3))
        self.phon_len[node_id] = len(rough_phonetic("".join(name_tokens)))
        if name_lower:
            self.first_char[node_id] = ord(name_lower[0])
            self.last_char[node_id] = ord(name_lower[-1])
        self.initials_id[node_id] = self.intern(initials(name_tokens))
        self.type_id[node_id] = self.intern(data.type)
        flags = 0
        if any(t.isdigit() for t in name_tokens):
            flags |= HAS_NUMBERS
        if any(name_tokens[i].isdigit()
               for i in range(len(name_tokens) - 1)):
            flags |= HAS_MEASUREMENT
        self.flags[node_id] = flags

    @classmethod
    def build(cls, graph, vocab: Vocabulary) -> "NodeFeatures":
        features = cls()
        for node_id in graph.nodes():
            features.set_node(node_id, graph._nodes[node_id], vocab)
        features.grow(graph.num_node_slots)
        return features
