"""Baseline matchers the paper compares against.

* :class:`GraphTA` -- the threshold-algorithm baseline (Section III).
* :class:`BeliefPropagation` -- the BP baseline of [2]/[14].
* :func:`brute_force_topk` -- exhaustive oracle (tests only).
"""

from repro.baselines.belief_prop import BeliefPropagation
from repro.baselines.brute_force import (
    brute_force_matches,
    brute_force_star,
    brute_force_topk,
    edge_match,
)
from repro.baselines.graph_ta import GraphTA

__all__ = [
    "BeliefPropagation",
    "GraphTA",
    "brute_force_matches",
    "brute_force_star",
    "brute_force_topk",
    "edge_match",
]
