"""Procedure ``graphTA``: threshold-algorithm top-k subgraph matching.

The Section III baseline: treat each query node as an attribute with a
sorted candidate list; sweep cursors over the lists, expanding every newly
seen (query node -> data node) assignment into complete matches by an
anchored subgraph-isomorphism search; maintain the lower bound ``theta``
(current k-th best) and the TA upper bound ``U`` over unseen assignments;
stop when ``theta >= U``.

Both optimizations the paper applies for fairness are present:

* (a) neighbor/matching-score caching -- the shared
  :class:`ScoringFunction` memoizes every score, and d-hop neighborhoods
  are cached per data node;
* (b) BFS-ordered exploration with score-sorted neighbor expansion -- the
  anchored search assigns query nodes in BFS order from the anchor and
  tries data candidates in decreasing score order.

The anchored expansion additionally prunes with a branch-and-bound check
(partial score + optimistic completion <= theta), which only skips matches
that can never enter the top-k -- graphTA stays exact.  Its weakness, as
Section III explains, is that high node scores do not imply high match
scores, so it expands many anchors that never produce top answers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.baselines.brute_force import edge_match
from repro.core.candidates import node_candidates
from repro.core.matches import Match
from repro.errors import BudgetExceededError, SearchError
from repro.graph.traversal import nodes_within
from repro.query.model import Query, QueryEdge
from repro.runtime.budget import Budget, SearchReport
from repro.runtime.faults import SUBSTRATE_ERRORS
from repro.similarity.scoring import ScoringFunction


class _AnytimeStop(Exception):
    """Internal control flow: unwind the anchored backtracking once an
    anytime budget trips (never escapes :meth:`GraphTA.search`)."""


class GraphTA:
    """Threshold-algorithm top-k subgraph matcher.

    Args:
        scorer: shared :class:`ScoringFunction`.
        d: search bound (edges may match paths of length <= d).
        injective: enforce one-to-one matching.
        candidate_limit: optional per-query-node candidate cutoff.
    """

    def __init__(
        self,
        scorer: ScoringFunction,
        d: int = 1,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
        directed: bool = False,
    ) -> None:
        if d < 1:
            raise SearchError(f"search bound d must be >= 1, got {d}")
        if directed and d != 1:
            raise SearchError("directed matching is defined for d == 1 only")
        self.directed = directed
        self.scorer = scorer
        self.graph = scorer.graph
        self.d = d
        self.injective = injective
        self.candidate_limit = candidate_limit
        # Exposed diagnostics.
        self.anchors_expanded = 0
        self.partial_assignments = 0
        self.last_report: Optional[SearchReport] = None

    # ------------------------------------------------------------------
    def _edge_upper_bounds(self, query: Query) -> Dict[int, float]:
        """Per-query-edge maximum achievable ``F_E`` over this graph."""
        relations = self.graph.relations() or {""}
        bounds: Dict[int, float] = {}
        for edge in query.edges:
            best_rel = max(
                self.scorer.relation_score(edge.descriptor, rel)
                for rel in relations
            )
            if self.d > 1:
                best_rel = max(best_rel, self.scorer.path.decay(2))
            bounds[edge.id] = best_rel
        return bounds

    # ------------------------------------------------------------------
    def search(
        self, query: Query, k: int, budget: Optional[Budget] = None
    ) -> List[Match]:
        """Top-k matches of *query* in decreasing score order.

        With an anytime *budget*, a trip stops the TA sweep mid-anchor and
        the pool built so far is ranked and returned, flagged via
        :attr:`last_report`.

        Raises:
            SearchError: for non-positive k.
            SearchTimeoutError / BudgetExceededError: on a strict-mode
                budget trip.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        try:
            with obs.trace("graphta.search", k=k, d=self.d):
                results = self._search(query, k, budget)
        except BudgetExceededError as exc:
            self.last_report = SearchReport.from_budget("graphta", budget, 0)
            if exc.report is None:
                exc.report = self.last_report
            raise
        self.last_report = SearchReport.from_budget(
            "graphta", budget, len(results)
        )
        return results

    def _search(
        self, query: Query, k: int, budget: Optional[Budget]
    ) -> List[Match]:
        query.validate()
        self.anchors_expanded = 0
        self.partial_assignments = 0
        budget_on = budget is not None
        anytime = budget_on and budget.anytime

        try:
            lists: Dict[int, List[Tuple[int, float]]] = {
                qnode.id: node_candidates(
                    self.scorer, qnode, self.candidate_limit, budget=budget
                )
                for qnode in query.nodes
            }
        except SUBSTRATE_ERRORS as exc:
            if not anytime:
                raise
            budget.record_fault(f"graphta candidate setup: {exc}")
            return []
        if any(not entries for entries in lists.values()):
            return []
        score_maps: Dict[int, Dict[int, float]] = {
            qid: dict(entries) for qid, entries in lists.items()
        }
        edge_bounds = self._edge_upper_bounds(query)
        edge_bound_total = sum(edge_bounds.values())
        top_scores = {qid: entries[0][1] for qid, entries in lists.items()}
        distance_cache: Dict[int, Dict[int, int]] = {}

        pool: Dict[Tuple, Match] = {}  # dedup by matching-function identity

        def theta() -> float:
            if len(pool) < k:
                return float("-inf")
            return sorted((m.score for m in pool.values()), reverse=True)[k - 1]

        cursor = 0
        max_len = max(len(entries) for entries in lists.values())
        try:
            while cursor < max_len:
                # Expand the assignment under each cursor (sorted access).
                for qid, entries in lists.items():
                    if cursor >= len(entries):
                        continue
                    data_node, _score = entries[cursor]
                    if anytime:
                        try:
                            self._expand_anchor(
                                query, qid, data_node, lists, score_maps,
                                distance_cache, pool, k, edge_bounds, budget,
                            )
                        except SUBSTRATE_ERRORS as exc:
                            budget.record_fault(
                                f"anchor {qid}->{data_node}: {exc}"
                            )
                    else:
                        self._expand_anchor(
                            query, qid, data_node, lists, score_maps,
                            distance_cache, pool, k, edge_bounds, budget,
                        )
                cursor += 1
                if budget_on and budget.check():
                    raise _AnytimeStop
                # TA upper bound over matches containing an unseen
                # assignment: it includes some list's entry at/past the
                # cursor, plus at best the other lists' top entries and
                # maximal edge scores.
                unseen_bounds = []
                for qid, entries in lists.items():
                    if cursor >= len(entries):
                        continue
                    bound = entries[cursor][1] + sum(
                        s for other, s in top_scores.items() if other != qid
                    )
                    unseen_bounds.append(bound + edge_bound_total)
                if not unseen_bounds:
                    break
                if len(pool) >= k and theta() >= max(unseen_bounds):
                    break
        except _AnytimeStop:
            pass

        ranked = sorted(pool.values(), key=lambda m: (-m.score, m.key()))
        return ranked[:k]

    # ------------------------------------------------------------------
    def _expand_anchor(
        self,
        query: Query,
        anchor_qid: int,
        anchor_node: int,
        lists: Dict[int, List[Tuple[int, float]]],
        score_maps: Dict[int, Dict[int, float]],
        distance_cache: Dict[int, Dict[int, int]],
        pool: Dict[Tuple, Match],
        k: int,
        edge_bounds: Dict[int, float],
        budget: Optional[Budget] = None,
    ) -> None:
        """Enumerate matches containing ``anchor_qid -> anchor_node``."""
        self.anchors_expanded += 1
        budget_on = budget is not None
        order = self._bfs_order(query, anchor_qid)
        # Optimistic completion scores per depth (suffix of node tops).
        suffix: List[float] = [0.0] * (len(order) + 1)
        for pos in range(len(order) - 1, -1, -1):
            qid = order[pos]
            top = lists[qid][0][1] if lists[qid] else 0.0
            suffix[pos] = suffix[pos + 1] + top

        placed_at = {qid: pos for pos, qid in enumerate(order)}
        back_edges: List[List[QueryEdge]] = [[] for _ in order]
        for edge in query.edges:
            later = edge.src if placed_at[edge.src] > placed_at[edge.dst] else edge.dst
            back_edges[placed_at[later]].append(edge)
        # Remaining-edge optimistic bound per depth.
        edge_suffix = [0.0] * (len(order) + 1)
        for pos in range(len(order) - 1, -1, -1):
            edge_suffix[pos] = edge_suffix[pos + 1] + sum(
                edge_bounds[e.id] for e in back_edges[pos]
            )

        assignment: Dict[int, int] = {}
        node_scores: Dict[int, float] = {}
        edge_scores: Dict[int, float] = {}
        edge_hops: Dict[int, int] = {}

        def current_theta() -> float:
            if len(pool) < k:
                return float("-inf")
            return sorted((m.score for m in pool.values()), reverse=True)[k - 1]

        def backtrack(pos: int, partial_score: float) -> None:
            if budget_on and budget.charge_nodes():
                raise _AnytimeStop
            self.partial_assignments += 1
            if pos == len(order):
                match = Match(
                    partial_score, dict(assignment), dict(node_scores),
                    dict(edge_scores), dict(edge_hops),
                )
                pool[match.key()] = match
                if len(pool) > 4 * k:
                    self._shrink_pool(pool, k)
                return
            qid = order[pos]
            # Branch and bound: even perfect completions cannot reach theta.
            if partial_score + suffix[pos] + edge_suffix[pos] <= current_theta():
                return
            if qid == anchor_qid:
                candidates = [(anchor_node, score_maps[qid].get(anchor_node))]
                if candidates[0][1] is None:
                    return
            else:
                candidates = self._ordered_candidates(
                    query, qid, pos, order, assignment, score_maps,
                    distance_cache,
                )
            used = set(assignment.values()) if self.injective else set()
            for data_node, n_score in candidates:
                if self.injective and data_node in used:
                    continue
                ok = True
                placed = []
                for edge in back_edges[pos]:
                    other = edge.other(qid)
                    if self.directed and edge.src == qid:
                        endpoints = (data_node, assignment[other])
                    else:
                        endpoints = (assignment[other], data_node)
                    matched = edge_match(
                        self.scorer, edge.descriptor, endpoints[0],
                        endpoints[1], self.d, distance_cache,
                        directed=self.directed,
                    )
                    if matched is None:
                        ok = False
                        break
                    placed.append((edge.id, matched))
                if not ok:
                    continue
                assignment[qid] = data_node
                node_scores[qid] = n_score
                gained = n_score
                for eid, (e_score, hops) in placed:
                    edge_scores[eid] = e_score
                    edge_hops[eid] = hops
                    gained += e_score
                backtrack(pos + 1, partial_score + gained)
                del assignment[qid]
                del node_scores[qid]
                for eid, _m in placed:
                    del edge_scores[eid]
                    del edge_hops[eid]

        backtrack(0, 0.0)

    # ------------------------------------------------------------------
    def _ordered_candidates(
        self,
        query: Query,
        qid: int,
        pos: int,
        order: List[int],
        assignment: Dict[int, int],
        score_maps: Dict[int, Dict[int, float]],
        distance_cache: Dict[int, Dict[int, int]],
    ) -> List[Tuple[int, float]]:
        """Score-sorted candidates for *qid* consistent with the partial
        assignment's connectivity (optimization (b): sorted BFS expansion).

        Restricts the candidate list to nodes within ``d`` hops of an
        already-assigned query neighbor (any one suffices: the remaining
        back-edges are verified by ``edge_match`` during backtracking).
        """
        anchor_neighbor: Optional[int] = None
        for nbr, _eid in query.neighbors(qid):
            if nbr in assignment:
                anchor_neighbor = assignment[nbr]
                break
        scores = score_maps[qid]
        if anchor_neighbor is None:  # pragma: no cover - BFS order prevents
            return sorted(scores.items(), key=lambda t: (-t[1], t[0]))
        reachable = distance_cache.get(anchor_neighbor)
        if reachable is None:
            reachable = nodes_within(self.graph, anchor_neighbor, self.d)
            distance_cache[anchor_neighbor] = reachable
        candidates = [
            (node, scores[node]) for node in reachable
            if node in scores and node != anchor_neighbor
        ]
        candidates.sort(key=lambda t: (-t[1], t[0]))
        return candidates

    def _bfs_order(self, query: Query, start: int) -> List[int]:
        order = [start]
        seen = {start}
        idx = 0
        while idx < len(order):
            v = order[idx]
            idx += 1
            for nbr, _eid in query.neighbors(v):
                if nbr not in seen:
                    seen.add(nbr)
                    order.append(nbr)
        return order

    @staticmethod
    def _shrink_pool(pool: Dict[Tuple, Match], k: int) -> None:
        """Keep only the best k entries (bounds pool memory)."""
        ranked = sorted(pool.items(), key=lambda t: -t[1].score)[:k]
        pool.clear()
        pool.update(ranked)
