"""Exhaustive matching oracle (ground truth for tests).

Enumerates *every* admissible match of a query by backtracking over query
nodes in BFS order, using the same candidate generation, scoring function
and d-bounded edge semantics as the production matchers -- so any score
disagreement with ``stark`` / ``stard`` / ``starjoin`` / ``graphTA`` is an
algorithmic bug, not a semantics mismatch.  Only intended for the small
graphs used in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.candidates import node_candidates
from repro.core.matches import Match
from repro.errors import SearchError
from repro.graph.traversal import nodes_within
from repro.query.model import Query, StarQuery
from repro.similarity.scoring import ScoringFunction


def edge_match(
    scorer: ScoringFunction,
    edge_descriptor,
    data_u: int,
    data_v: int,
    d: int,
    distance_cache: Dict[int, Dict[int, int]],
    directed: bool = False,
) -> Optional[Tuple[float, int]]:
    """Score a query edge matched between two data nodes, or None.

    Semantics (shared with the bounded leaf providers): the edge matches
    the *shortest* path between the endpoints; length 1 scores the best
    relation similarity over parallel data edges, length ``h >= 2`` scores
    ``lambda^(h-1)``.  Fails when the shortest distance exceeds *d* or the
    score falls below the edge threshold.

    With ``directed=True`` the query edge's orientation is enforced: only
    data edges ``data_u -> data_v`` qualify (callers must pass the query
    edge's src match as *data_u*).  Directed matching is defined for
    ``d == 1`` only.

    Raises:
        SearchError: if ``directed`` is combined with ``d > 1``.
    """
    graph = scorer.graph
    if directed:
        if d != 1:
            raise SearchError("directed matching is defined for d == 1 only")
        relations = [
            graph.edge(eid)[2].relation
            for nbr, eid in graph.out_neighbors(data_u)
            if nbr == data_v
        ]
        if not relations:
            return None
        score = max(
            scorer.relation_score(edge_descriptor, rel) for rel in relations
        )
        if score < scorer.config.edge_threshold:
            return None
        return score, 1
    dist_map = distance_cache.get(data_u)
    if dist_map is None:
        dist_map = nodes_within(graph, data_u, d)
        distance_cache[data_u] = dist_map
    hops = dist_map.get(data_v)
    if hops is None or hops == 0:
        return None
    if hops == 1:
        relations = [
            graph.edge(eid)[2].relation
            for nbr, eid in graph.neighbors(data_u)
            if nbr == data_v
        ]
        score = max(
            scorer.relation_score(edge_descriptor, rel) for rel in relations
        )
    else:
        score = scorer.path.decay(hops)
    if score < scorer.config.edge_threshold:
        return None
    return score, hops


def _bfs_order(query: Query) -> List[int]:
    """Query-node visit order: BFS from node 0 (query is connected)."""
    order = [0]
    seen = {0}
    idx = 0
    while idx < len(order):
        v = order[idx]
        idx += 1
        for nbr, _eid in query.neighbors(v):
            if nbr not in seen:
                seen.add(nbr)
                order.append(nbr)
    return order


def brute_force_matches(
    scorer: ScoringFunction,
    query: Query,
    d: int = 1,
    injective: bool = True,
    candidate_limit: Optional[int] = None,
    max_matches: int = 2_000_000,
    directed: bool = False,
) -> List[Match]:
    """All matches of *query*, sorted by decreasing score.

    Args:
        max_matches: safety valve -- raises :class:`SearchError` if the
            enumeration exceeds it (the oracle is for small inputs).
        directed: enforce query-edge orientation (d == 1 only).
    """
    query.validate()
    order = _bfs_order(query)
    candidates = {
        qid: node_candidates(scorer, query.nodes[qid], limit=candidate_limit)
        for qid in order
    }
    # Query edges back to already-assigned nodes, per position in `order`.
    placed_at: Dict[int, int] = {qid: pos for pos, qid in enumerate(order)}
    back_edges: List[List] = [[] for _ in order]
    for edge in query.edges:
        later = edge.src if placed_at[edge.src] > placed_at[edge.dst] else edge.dst
        back_edges[placed_at[later]].append(edge)

    distance_cache: Dict[int, Dict[int, int]] = {}
    results: List[Match] = []
    assignment: Dict[int, int] = {}
    node_scores: Dict[int, float] = {}
    edge_scores: Dict[int, float] = {}
    edge_hops: Dict[int, int] = {}

    def backtrack(pos: int) -> None:
        if len(results) > max_matches:
            raise SearchError("brute force exceeded max_matches")
        if pos == len(order):
            score = sum(node_scores.values()) + sum(edge_scores.values())
            results.append(
                Match(score, dict(assignment), dict(node_scores),
                      dict(edge_scores), dict(edge_hops))
            )
            return
        qid = order[pos]
        used = set(assignment.values()) if injective else set()
        for data_node, n_score in candidates[qid]:
            if injective and data_node in used:
                continue
            ok = True
            placed_edges = []
            for edge in back_edges[pos]:
                other = edge.other(qid)
                if directed and edge.src == qid:
                    endpoints = (data_node, assignment[other])
                else:
                    endpoints = (assignment[other], data_node)
                matched = edge_match(
                    scorer, edge.descriptor, endpoints[0], endpoints[1],
                    d, distance_cache, directed=directed,
                )
                if matched is None:
                    ok = False
                    break
                placed_edges.append((edge.id, matched))
            if not ok:
                continue
            assignment[qid] = data_node
            node_scores[qid] = n_score
            for eid, (e_score, hops) in placed_edges:
                edge_scores[eid] = e_score
                edge_hops[eid] = hops
            backtrack(pos + 1)
            del assignment[qid]
            del node_scores[qid]
            for eid, _m in placed_edges:
                del edge_scores[eid]
                del edge_hops[eid]

    backtrack(0)
    results.sort(key=lambda m: (-m.score, m.key()))
    return results


def brute_force_topk(
    scorer: ScoringFunction,
    query: Query,
    k: int,
    d: int = 1,
    injective: bool = True,
    candidate_limit: Optional[int] = None,
    directed: bool = False,
) -> List[Match]:
    """Top-k slice of :func:`brute_force_matches`."""
    return brute_force_matches(
        scorer, query, d=d, injective=injective,
        candidate_limit=candidate_limit, directed=directed,
    )[:k]


def brute_force_star(
    scorer: ScoringFunction,
    star: StarQuery,
    k: int,
    d: int = 1,
    injective: bool = True,
    directed: bool = False,
) -> List[Match]:
    """Oracle for a star query given as :class:`StarQuery`.

    Rebuilds the star as a standalone query preserving the original query
    node/edge ids via a remap, then defers to :func:`brute_force_topk`.
    """
    query = Query(name=star.name or "star-oracle")
    remap: Dict[int, int] = {}
    pivot_local = query.add_node(
        star.pivot.label, star.pivot.type, star.pivot.keywords
    )
    remap[pivot_local] = star.pivot.id
    edge_remap: Dict[int, int] = {}
    for leaf, edge in star.leaves:
        leaf_local = query.add_node(leaf.label, leaf.type, leaf.keywords)
        remap[leaf_local] = leaf.id
        # Preserve the original edge orientation (matters when directed).
        if edge.src == star.pivot.id:
            local_eid = query.add_edge(pivot_local, leaf_local, edge.label)
        else:
            local_eid = query.add_edge(leaf_local, pivot_local, edge.label)
        edge_remap[local_eid] = edge.id
    matches = brute_force_topk(
        scorer, query, k, d=d, injective=injective, directed=directed
    )
    # Translate local ids back to the original query's ids.
    translated: List[Match] = []
    for m in matches:
        translated.append(
            Match(
                m.score,
                {remap[q]: v for q, v in m.assignment.items()},
                {remap[q]: s for q, s in m.node_scores.items()},
                {edge_remap[e]: s for e, s in m.edge_scores.items()},
                {edge_remap[e]: h for e, h in m.edge_hops.items()},
            )
        )
    return translated
