"""Belief-propagation top-k matching (the [2]/[14]-style baseline).

Section VII: "BP considers the nodes/edges in a query as a set of random
variables and converts the top-k matching problem to probabilistic
inference on the label (match) for each random variable ... For acyclic
queries, BP outputs the exact top-k matches.  But for cyclic queries it
does not guarantee completeness."

We implement max-sum (max-product in log space; our scores are already
additive) loopy belief propagation on the pairwise factor graph:

* variables   = query nodes, domains = scored candidate lists;
* unary       = ``F_N``; pairwise on each query edge = the d-bounded
  ``F_E`` between the two candidates (-inf when no path qualifies);
* messages    iterate until convergence (or ``max_iters``; trees converge
  in diameter rounds, so acyclic inference is exact);
* decoding    = the BP backtracked MAP assignment (exact on trees) plus a
  belief-guided beam search with exact re-scoring for the k-best list.

Its cost profile is what Exp-1/Exp-2 show: the pairwise potential tables
require candidate-pair path computations that blow up with ``d``, ``k``
and query size.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.baselines.brute_force import edge_match
from repro.core.candidates import node_candidates
from repro.core.matches import Match
from repro.errors import BudgetExceededError, SearchError
from repro.query.model import Query, QueryEdge
from repro.runtime.budget import Budget, SearchReport
from repro.runtime.faults import SUBSTRATE_ERRORS
from repro.similarity.scoring import ScoringFunction

NEG_INF = float("-inf")


class _AnytimeStop(Exception):
    """Internal control flow: cut the pairwise-table construction short
    once an anytime budget trips (never escapes
    :meth:`BeliefPropagation.search`)."""


class BeliefPropagation:
    """Loopy max-sum BP top-k matcher.

    Args:
        scorer: shared :class:`ScoringFunction`.
        d: search bound.
        injective: enforce one-to-one matching at decoding time (standard
            BP relaxes it during inference).
        candidate_limit: per-variable domain cutoff.
        max_iters: message-passing round limit (trees need <= diameter).
        beam_width: beam used by the k-best decoder (>= 4k recommended).
        damping: message damping factor in [0, 1) for loopy stability.
    """

    def __init__(
        self,
        scorer: ScoringFunction,
        d: int = 1,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
        max_iters: int = 20,
        beam_width: Optional[int] = None,
        damping: float = 0.0,
        directed: bool = False,
    ) -> None:
        if d < 1:
            raise SearchError(f"search bound d must be >= 1, got {d}")
        if directed and d != 1:
            raise SearchError("directed matching is defined for d == 1 only")
        self.directed = directed
        if not (0.0 <= damping < 1.0):
            raise SearchError(f"damping={damping} must be in [0, 1)")
        self.scorer = scorer
        self.graph = scorer.graph
        self.d = d
        self.injective = injective
        self.candidate_limit = candidate_limit
        self.max_iters = max_iters
        self.beam_width = beam_width
        self.damping = damping
        self.iterations_run = 0
        self.pairwise_evaluated = 0
        self.last_report: Optional[SearchReport] = None

    # ------------------------------------------------------------------
    def _pairwise(
        self,
        query: Query,
        domains: Dict[int, List[Tuple[int, float]]],
        distance_cache: Dict[int, Dict[int, int]],
        budget: Optional[Budget] = None,
    ) -> Dict[int, Dict[Tuple[int, int], Tuple[float, int]]]:
        """Pairwise potential tables: edge id -> {(u_val, v_val): (F_E, hops)}.

        This is BP's dominant cost: every candidate pair of every query
        edge needs a d-bounded path check.  Each pair charges the message
        budget; an anytime trip returns the tables built so far (every
        edge keyed, possibly with missing pairs -- downstream treats a
        missing pair as an inadmissible combination, so decoded matches
        stay genuine, just possibly fewer).
        """
        budget_on = budget is not None
        anytime = budget_on and budget.anytime
        tables: Dict[int, Dict[Tuple[int, int], Tuple[float, int]]] = {
            edge.id: {} for edge in query.edges
        }
        try:
            for edge in query.edges:
                table = tables[edge.id]
                u_domain = domains[edge.src]
                v_values = {v for v, _s in domains[edge.dst]}
                for u_val, _su in u_domain:
                    for v_val in v_values:
                        if u_val == v_val:
                            continue
                        if budget_on and budget.charge_messages():
                            raise _AnytimeStop
                        self.pairwise_evaluated += 1
                        if anytime:
                            try:
                                matched = edge_match(
                                    self.scorer, edge.descriptor, u_val,
                                    v_val, self.d, distance_cache,
                                    directed=self.directed,
                                )
                            except SUBSTRATE_ERRORS as exc:
                                budget.record_fault(
                                    f"pairwise ({u_val}, {v_val}): {exc}"
                                )
                                continue
                        else:
                            matched = edge_match(
                                self.scorer, edge.descriptor, u_val, v_val,
                                self.d, distance_cache,
                                directed=self.directed,
                            )
                        if matched is not None:
                            table[(u_val, v_val)] = matched
        except _AnytimeStop:
            pass
        return tables

    # ------------------------------------------------------------------
    def search(
        self, query: Query, k: int, budget: Optional[Budget] = None
    ) -> List[Match]:
        """Top-k matches (exact on trees, best-effort on cyclic queries).

        With an anytime *budget*, a trip truncates the pairwise tables
        and/or the iteration loop and decoding proceeds over what was
        computed -- every returned match is genuine (exactly re-scored),
        but the list may be short or mis-ranked, and :attr:`last_report`
        flags the run.

        Raises:
            SearchError: for non-positive k.
            SearchTimeoutError / BudgetExceededError: on a strict-mode
                budget trip.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        try:
            with obs.trace("bp.search", k=k, d=self.d):
                results = self._search(query, k, budget)
        except BudgetExceededError as exc:
            self.last_report = SearchReport.from_budget("bp", budget, 0)
            if exc.report is None:
                exc.report = self.last_report
            raise
        self.last_report = SearchReport.from_budget("bp", budget, len(results))
        return results

    def _search(
        self, query: Query, k: int, budget: Optional[Budget]
    ) -> List[Match]:
        query.validate()
        self.iterations_run = 0
        self.pairwise_evaluated = 0
        budget_on = budget is not None
        anytime = budget_on and budget.anytime

        try:
            domains = {
                qnode.id: node_candidates(
                    self.scorer, qnode, self.candidate_limit, budget=budget
                )
                for qnode in query.nodes
            }
        except SUBSTRATE_ERRORS as exc:
            if not anytime:
                raise
            budget.record_fault(f"bp candidate setup: {exc}")
            return []
        if any(not dom for dom in domains.values()):
            return []
        unary = {
            qid: {val: score for val, score in dom}
            for qid, dom in domains.items()
        }
        distance_cache: Dict[int, Dict[int, int]] = {}
        tables = self._pairwise(query, domains, distance_cache, budget=budget)

        # Messages keyed by directed (edge id, from qid): {to_value: score}.
        messages: Dict[Tuple[int, int], Dict[int, float]] = {}
        for edge in query.edges:
            messages[(edge.id, edge.src)] = {v: 0.0 for v, _s in domains[edge.dst]}
            messages[(edge.id, edge.dst)] = {v: 0.0 for v, _s in domains[edge.src]}

        for _iteration in range(self.max_iters):
            if budget_on and budget.check():
                break  # decode from the rounds already run
            self.iterations_run += 1
            delta = self._iterate(query, domains, unary, tables, messages)
            if delta < 1e-9:
                break

        beliefs = self._beliefs(query, domains, unary, messages)
        # Iterative beam widening: a greedy beam can starve -- on cyclic
        # queries every prefix may fail the cycle-closing check, and even
        # on trees a high-fanout variable can crowd the true matches out
        # of the beam.  Widen until k results arrive or widening stops
        # helping; residual incompleteness on cyclic inputs is inherent
        # to BP (Section VII, "does not guarantee the completeness").
        width = self.beam_width or max(4 * k, 64)
        results = self._decode(
            query, domains, unary, tables, beliefs, k, width, budget
        )
        for _attempt in range(3):
            if len(results) >= k:
                break
            if budget_on and budget.out_of_time():
                break  # no time left to widen the beam
            width *= 4
            wider = self._decode(
                query, domains, unary, tables, beliefs, k, width, budget
            )
            if len(wider) <= len(results):
                return wider if len(wider) > len(results) else results
            results = wider
        return results

    # ------------------------------------------------------------------
    def _iterate(self, query, domains, unary, tables, messages) -> float:
        """One synchronous round of max-sum updates; returns max change."""
        new_messages: Dict[Tuple[int, int], Dict[int, float]] = {}
        max_delta = 0.0
        for edge in query.edges:
            for src_qid, dst_qid in ((edge.src, edge.dst), (edge.dst, edge.src)):
                key = (edge.id, src_qid)
                incoming_keys = [
                    (other_edge.id, other_qid)
                    for other_qid, other_eid in query.neighbors(src_qid)
                    for other_edge in (query.edges[other_eid],)
                    if other_edge.id != edge.id
                ]
                out: Dict[int, float] = {}
                for dst_val, _s in domains[dst_qid]:
                    best = NEG_INF
                    for src_val, _su in domains[src_qid]:
                        pair = (
                            (src_val, dst_val)
                            if src_qid == edge.src
                            else (dst_val, src_val)
                        )
                        pot = tables[edge.id].get(pair)
                        if pot is None:
                            continue
                        total = unary[src_qid][src_val] + pot[0]
                        for in_key in incoming_keys:
                            total += messages[in_key].get(src_val, NEG_INF)
                        if total > best:
                            best = total
                    old = messages[key].get(dst_val, 0.0)
                    if self.damping and old != NEG_INF and best != NEG_INF:
                        best = self.damping * old + (1 - self.damping) * best
                    out[dst_val] = best
                    if best != NEG_INF and old != NEG_INF:
                        max_delta = max(max_delta, abs(best - old))
                    elif best != old:
                        max_delta = max(max_delta, 1.0)
                new_messages[key] = out
        messages.update(new_messages)
        return max_delta

    def _beliefs(self, query, domains, unary, messages) -> Dict[int, Dict[int, float]]:
        beliefs: Dict[int, Dict[int, float]] = {}
        for qnode in query.nodes:
            qid = qnode.id
            b: Dict[int, float] = {}
            for val, _s in domains[qid]:
                total = unary[qid][val]
                for nbr, eid in query.neighbors(qid):
                    total += messages[(eid, nbr)].get(val, NEG_INF)
                b[val] = total
            beliefs[qid] = b
        return beliefs

    # ------------------------------------------------------------------
    def _decode(
        self, query, domains, unary, tables, beliefs, k, beam_width,
        budget: Optional[Budget] = None,
    ) -> List[Match]:
        """Belief-guided beam search with exact re-scoring.

        Decoding is a wind-down over already-computed tables, so only the
        deadline is honored (counter trips are ignored): running out of
        wall-clock mid-beam returns no matches from this pass.
        """
        budget_on = budget is not None
        order = self._bfs_order(query)
        placed_at = {qid: pos for pos, qid in enumerate(order)}
        back_edges: List[List[QueryEdge]] = [[] for _ in order]
        for edge in query.edges:
            later = edge.src if placed_at[edge.src] > placed_at[edge.dst] else edge.dst
            back_edges[placed_at[later]].append(edge)

        # Candidates per variable sorted by belief (BP's ranking signal).
        ranked_domain = {
            qid: sorted(beliefs[qid], key=lambda v: -beliefs[qid][v])
            for qid in beliefs
        }

        Beam = List[Tuple[float, Dict[int, int], Dict[int, float], Dict[int, float], Dict[int, int]]]
        beam: Beam = [(0.0, {}, {}, {}, {})]
        for pos, qid in enumerate(order):
            if budget_on and budget.out_of_time():
                return []  # mid-beam prefixes are not matches
            grown: Beam = []
            for score, assignment, n_scores, e_scores, e_hops in beam:
                used = set(assignment.values()) if self.injective else set()
                for val in ranked_domain[qid]:
                    if self.injective and val in used:
                        continue
                    ok = True
                    add_edges = []
                    for edge in back_edges[pos]:
                        other_val = assignment[edge.other(qid)]
                        pair = (
                            (val, other_val) if qid == edge.src
                            else (other_val, val)
                        )
                        pot = tables[edge.id].get(pair)
                        if pot is None:
                            ok = False
                            break
                        add_edges.append((edge.id, pot))
                    if not ok:
                        continue
                    new_assignment = dict(assignment)
                    new_assignment[qid] = val
                    new_n = dict(n_scores)
                    new_n[qid] = unary[qid][val]
                    new_e = dict(e_scores)
                    new_h = dict(e_hops)
                    gained = unary[qid][val]
                    for eid, (e_score, hops) in add_edges:
                        new_e[eid] = e_score
                        new_h[eid] = hops
                        gained += e_score
                    grown.append(
                        (score + gained, new_assignment, new_n, new_e, new_h)
                    )
            grown.sort(key=lambda t: -t[0])
            beam = grown[:beam_width]
            if not beam:
                return []
        matches = [
            Match(score, assignment, n_scores, e_scores, e_hops)
            for score, assignment, n_scores, e_scores, e_hops in beam
        ]
        matches.sort(key=lambda m: (-m.score, m.key()))
        return matches[:k]

    def _bfs_order(self, query: Query) -> List[int]:
        order = [0]
        seen = {0}
        idx = 0
        while idx < len(order):
            v = order[idx]
            idx += 1
            for nbr, _eid in query.neighbors(v):
                if nbr not in seen:
                    seen.add(nbr)
                    order.append(nbr)
        return order
