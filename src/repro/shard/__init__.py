"""``repro.shard``: partitioned parallel execution of star searches.

The scalability experiments (Fig. 15) are embarrassingly parallel in
the pivot dimension: a star query's matches are generated per candidate
pivot, and any disjoint split of the pivot universe splits the work.
This package makes that operational:

* :mod:`repro.shard.partition` -- hash / pivot-type edge-cut
  partitioning with d-hop halo replication, so every star pivoted in a
  shard is answerable from local scope alone;
* :mod:`repro.shard.executor` -- :class:`ShardedEngine`: per-shard fork
  workers streaming scoped matches (index columns attached zero-copy
  from shared memory), merged by the HRJN bound machinery shared with
  ``starjoin`` (:mod:`repro.core.rankmerge`) into an exact global
  top-k, byte-identical to single-shard execution.

Entry points: :class:`ShardedEngine` for library use, ``--shards N
--partition hash|pivot-type`` on the CLI, ``shards=``/``partition=`` on
:func:`repro.perf.search_many`, and ``engine_opts={"shards": N}`` on
the serve layer.
"""

from repro.shard.executor import BACKENDS, ShardedEngine, ShardWorkerPool
from repro.shard.partition import (
    STRATEGIES,
    GraphPartition,
    partition_graph,
)

__all__ = [
    "BACKENDS",
    "GraphPartition",
    "STRATEGIES",
    "ShardedEngine",
    "ShardWorkerPool",
    "partition_graph",
]
