"""Graph partitioning for sharded star search.

A partition assigns every live node to exactly one *owner* shard
(disjoint, exhaustive), then extends each shard with a *halo*: the
owned set plus every node within ``replication_depth`` hops of it.
Replication depth mirrors the engine's search bound ``d``: a star
pivoted at an owned node only ever binds leaves reachable within ``d``
hops (``stark``'s adjacency fetch at d = 1, ``stard``'s message
passing at d >= 2), so restricting a shard's pivot candidates to its
owned set and its leaf candidates / propagation seeds to its halo is
*exact* -- the shard produces precisely the global matches whose pivot
it owns, with globally computed scores (workers share the full graph
and its corpus statistics).  Disjoint ownership then makes shard
outputs disjoint, so the global merge is a duplicate-free rank join.

Two strategies:

* ``hash`` -- splitmix64-mixed node id modulo shard count.  Uniform,
  oblivious, and stable under graph growth of unrelated regions; the
  halo is typically large on well-connected graphs (most nodes are
  within d hops of every shard).
* ``pivot-type`` -- greedy bin packing of *type groups* (largest
  first) onto the least-loaded shard, untyped nodes hashed.  Queries
  pivot on typed constraints far more often than not, so co-locating a
  type puts all plausible pivots of a query on few shards and shrinks
  per-shard halos to each type's neighborhood.

Cut statistics (``cut_edges``, ``replication_factor``) quantify the
replication cost the halo rule implies; ``repro.obs`` exposes them as
``shard.*`` gauges.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import SearchError

__all__ = ["GraphPartition", "partition_graph", "STRATEGIES"]

STRATEGIES = ("hash", "pivot-type")

_M64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """splitmix64 finalizer: decorrelates dense node ids from shard ids."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return (x ^ (x >> 31)) & _M64


class GraphPartition:
    """An immutable shard assignment over one graph version."""

    __slots__ = ("num_shards", "strategy", "replication_depth",
                 "graph_uid", "graph_version", "owned", "halos",
                 "cut_edges", "num_nodes")

    def __init__(self, num_shards: int, strategy: str,
                 replication_depth: int, graph_uid: int,
                 graph_version: int, owned: Tuple[FrozenSet[int], ...],
                 halos: Tuple[FrozenSet[int], ...],
                 cut_edges: int, num_nodes: int) -> None:
        self.num_shards = num_shards
        self.strategy = strategy
        self.replication_depth = replication_depth
        self.graph_uid = graph_uid
        self.graph_version = graph_version
        #: Disjoint, exhaustive owner sets (pivot scopes).
        self.owned = owned
        #: ``owned[i]`` plus its ``replication_depth``-hop ball (leaf /
        #: seed scopes).
        self.halos = halos
        #: Edges whose endpoints land in different owner sets.
        self.cut_edges = cut_edges
        self.num_nodes = num_nodes

    @property
    def replication_factor(self) -> float:
        """``sum(|halo_i|) / |V|`` -- 1.0 means zero replication."""
        if not self.num_nodes:
            return 1.0
        return sum(len(h) for h in self.halos) / self.num_nodes

    def shard_of(self, node_id: int) -> int:
        for shard_id, members in enumerate(self.owned):
            if node_id in members:
                return shard_id
        raise KeyError(node_id)

    def describe(self) -> Dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "replication_depth": self.replication_depth,
            "owned_sizes": [len(s) for s in self.owned],
            "halo_sizes": [len(h) for h in self.halos],
            "cut_edges": self.cut_edges,
            "replication_factor": round(self.replication_factor, 4),
        }


def _halo(graph, owned: FrozenSet[int], depth: int) -> FrozenSet[int]:
    """*owned* plus every node within *depth* hops of it (BFS)."""
    if depth <= 0:
        return owned
    seen = set(owned)
    frontier = deque((node, 0) for node in owned)
    while frontier:
        node, dist = frontier.popleft()
        if dist == depth:
            continue
        for nbr, _eid in graph.neighbors(node):
            if nbr not in seen:
                seen.add(nbr)
                frontier.append((nbr, dist + 1))
    return frozenset(seen)


def _assign_hash(graph, num_shards: int) -> List[set]:
    owned: List[set] = [set() for _ in range(num_shards)]
    for node_id in graph.nodes():
        owned[_mix(node_id) % num_shards].add(node_id)
    return owned


def _assign_pivot_type(graph, num_shards: int) -> List[set]:
    groups: Dict[str, List[int]] = {}
    untyped: List[int] = []
    for node_id in graph.nodes():
        node_type = graph.node(node_id).type
        if node_type:
            groups.setdefault(node_type, []).append(node_id)
        else:
            untyped.append(node_id)
    owned: List[set] = [set() for _ in range(num_shards)]
    loads = [0] * num_shards
    # Largest group first onto the least-loaded shard (name breaks size
    # ties so the assignment is deterministic across runs).
    for name in sorted(groups, key=lambda t: (-len(groups[t]), t)):
        members = groups[name]
        target = min(range(num_shards), key=lambda s: (loads[s], s))
        owned[target].update(members)
        loads[target] += len(members)
    for node_id in untyped:
        owned[_mix(node_id) % num_shards].add(node_id)
    return owned


def partition_graph(graph, num_shards: int, strategy: str = "hash",
                    replication_depth: int = 1) -> GraphPartition:
    """Partition *graph* into *num_shards* owner sets plus halos.

    Args:
        strategy: ``hash`` or ``pivot-type`` (see module docstring).
        replication_depth: halo radius; must be >= the engine's search
            bound ``d`` for sharded answers to be exact.

    Raises:
        SearchError: for a non-positive shard count, unknown strategy,
            or negative replication depth.
    """
    if num_shards < 1:
        raise SearchError(f"num_shards must be >= 1, got {num_shards}")
    if strategy not in STRATEGIES:
        raise SearchError(
            f"unknown partition strategy {strategy!r}; "
            f"expected one of {STRATEGIES}"
        )
    if replication_depth < 0:
        raise SearchError(
            f"replication_depth must be >= 0, got {replication_depth}"
        )
    if num_shards == 1:
        everything = frozenset(graph.nodes())
        return GraphPartition(
            1, strategy, replication_depth, graph.uid, graph.version,
            (everything,), (everything,), 0, len(everything),
        )
    if strategy == "hash":
        owned_sets = _assign_hash(graph, num_shards)
    else:
        owned_sets = _assign_pivot_type(graph, num_shards)

    shard_by_node: Dict[int, int] = {}
    for shard_id, members in enumerate(owned_sets):
        for node_id in members:
            shard_by_node[node_id] = shard_id
    cut = 0
    for node_id, home in shard_by_node.items():
        for nbr, _eid in graph.neighbors(node_id):
            if nbr > node_id and shard_by_node.get(nbr, home) != home:
                cut += 1

    owned = tuple(frozenset(s) for s in owned_sets)
    halos = tuple(_halo(graph, s, replication_depth) for s in owned)
    return GraphPartition(
        num_shards, strategy, replication_depth, graph.uid, graph.version,
        owned, halos, cut, len(shard_by_node),
    )
