"""Sharded star-search execution: scoped workers + global rank merge.

``ShardedEngine`` splits a star query across the shards of a
:class:`~repro.shard.partition.GraphPartition` and merges the per-shard
monotone match streams back into one exact global top-k:

* every worker holds the **full** graph (fork copy-on-write) plus the
  parent's :class:`~repro.index.GraphIndex` numeric columns attached
  zero-copy from shared memory (:mod:`repro.index.shm`), so scores --
  IDF, degree normalizers, all corpus statistics -- are computed
  globally and match single-process execution bit for bit;
* a worker's matcher is *scoped*: pivot candidates restricted to the
  shard's owned nodes, leaf candidates / propagation seeds to its halo
  (exactness argument in :mod:`repro.shard.partition`), so per-shard
  work shrinks roughly linearly in the shard count;
* the parent treats each shard stream as a rank-join input
  (:class:`~repro.core.rankmerge.RankMerger`): streams are pulled in
  chunks, the k-th pooled score is the HRJN threshold, and a shard
  whose last score can no longer reach the threshold is *stopped*
  without draining (``shard.bound_terminated``).

Results are byte-identical across shard counts, partition strategies
and backends: disjoint pivot ownership makes shard outputs disjoint,
and the merger ranks by the canonical ``(-score, match.key())`` order,
which no arrival interleaving can perturb.

Fault tolerance follows the serve supervisor's pattern: each worker is
reached over a private duplex pipe, EOF/broken-pipe means death, the
dead shard's stream is re-run inline in the parent (same scoped
matcher, same results -- the merger dedups any half-delivered chunk),
and the worker is respawned for the next query.  Shared-memory
segments are unlinked on :meth:`ShardedEngine.close` and by a
``weakref.finalize`` safety net, including after worker crashes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import weakref
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.core.framework import Star
from repro.core.matches import Match
from repro.core.rankmerge import RankMerger
from repro.core.stard import StarDSearch
from repro.core.stark import StarKSearch
from repro.errors import SearchError
from repro.index.shm import attach_shared_index, export_index
from repro.query.model import Query, StarQuery
from repro.runtime.budget import Budget, SearchReport
from repro.shard.partition import GraphPartition, partition_graph
from repro.similarity.scoring import ScoringConfig, ScoringFunction

__all__ = ["ShardedEngine", "ShardWorkerPool", "BACKENDS"]

BACKENDS = ("auto", "fork", "serial")

#: Fork-inherited execution contexts, keyed by registration id.  Entries
#: exist in the parent before workers fork (children read their copy at
#: startup) and are removed when the owning engine closes.
_SHARD_CTX: Dict[int, dict] = {}
_CTX_IDS = itertools.count(1)


class _WorkerCrash(Exception):
    """A shard worker died mid-conversation (EOF / broken pipe)."""

    def __init__(self, shard_id: int) -> None:
        super().__init__(f"shard worker {shard_id} died")
        self.shard_id = shard_id


def _scoped_matcher(scorer: ScoringFunction, opts: dict,
                    pivot_scope, leaf_scope):
    if opts["d"] == 1:
        return StarKSearch(
            scorer, injective=opts["injective"],
            candidate_limit=opts["candidate_limit"],
            directed=opts["directed"],
            pivot_scope=pivot_scope, leaf_scope=leaf_scope,
        )
    return StarDSearch(
        scorer, d=opts["d"], injective=opts["injective"],
        candidate_limit=opts["candidate_limit"],
        pivot_scope=pivot_scope, leaf_scope=leaf_scope,
    )


def _pull_chunk(stream, n: int) -> Tuple[List[Match], bool]:
    """Up to *n* matches off a monotone stream; empty only at the end."""
    out: List[Match] = []
    for _ in range(n):
        match = next(stream, None)
        if match is None:
            return out, True
        out.append(match)
    return out, False


def _shard_worker_main(ctx_key: int, shard_id: int, conn) -> None:
    ctx = _SHARD_CTX[ctx_key]
    # The child inherited the parent's active tracer through the fork;
    # its spans would double-count in the parent's registry.
    tracer = obs.active_tracer()
    if tracer is not None:
        tracer.reset()
    graph = ctx["graph"]
    scorer = ScoringFunction(graph, ctx["config"])
    attached = None
    if ctx["shm_handle"] is not None:
        attached = attach_shared_index(ctx["shm_handle"], graph)
        scorer.graph_index = attached
    elif ctx.get("store_path") is not None:
        from repro.store.attach import attach_mmap_index

        attached = attach_mmap_index(
            ctx["store_path"], graph, mode=ctx.get("store_mode", "auto"))
        scorer.graph_index = attached
    partition: GraphPartition = ctx["partition"]
    matcher = _scoped_matcher(
        scorer, ctx["opts"],
        partition.owned[shard_id], partition.halos[shard_id],
    )
    stream = None
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "search":
                star, chunk = msg[1], msg[2]
                stream = matcher.stream(star)
                conn.send(_pull_chunk(stream, chunk))
            elif kind == "more":
                if stream is None:
                    conn.send(([], True))
                else:
                    conn.send(_pull_chunk(stream, msg[1]))
            elif kind == "stop":
                stream = None
            elif kind == "crash":
                # Test hook: die without cleanup, exactly like a segfault
                # would look from the parent's side of the pipe.
                os._exit(msg[1])
            elif kind == "shutdown":
                break
    finally:
        if attached is not None:
            attached.detach()
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass


class _WorkerHandle:
    __slots__ = ("process", "conn", "shard_id")

    def __init__(self, process, conn, shard_id: int) -> None:
        self.process = process
        self.conn = conn
        self.shard_id = shard_id


class ShardWorkerPool:
    """One persistent fork worker per shard, reached over private pipes.

    Death detection mirrors ``repro.serve``'s supervisor: every
    conversation runs over a worker-private duplex pipe, so an EOF or a
    broken pipe on either direction *is* the death signal -- no
    polling, no shared queue another worker could mask the loss on.
    Dead workers are respawned on demand via :meth:`respawn`.
    """

    def __init__(self, ctx_key: int, num_shards: int) -> None:
        self.ctx_key = ctx_key
        self.num_shards = num_shards
        self.crashes = 0
        self.closed = False
        self._mp = multiprocessing.get_context("fork")
        self._workers = [self._spawn(i) for i in range(num_shards)]

    def _spawn(self, shard_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_shard_worker_main,
            args=(self.ctx_key, shard_id, child_conn),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn, shard_id)

    def send(self, shard_id: int, msg) -> None:
        try:
            self._workers[shard_id].conn.send(msg)
        except (BrokenPipeError, OSError):
            raise _WorkerCrash(shard_id) from None

    def recv(self, shard_id: int):
        try:
            return self._workers[shard_id].conn.recv()
        except (EOFError, OSError):
            raise _WorkerCrash(shard_id) from None

    def respawn(self, shard_id: int) -> None:
        """Replace a dead worker (joins the corpse, counts the crash)."""
        self.crashes += 1
        dead = self._workers[shard_id]
        try:
            dead.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        dead.process.join(timeout=5.0)
        if dead.process.is_alive():  # pragma: no cover - defensive
            dead.process.terminate()
            dead.process.join(timeout=5.0)
        self._workers[shard_id] = self._spawn(shard_id)

    def shutdown(self) -> None:
        if self.closed:
            return
        self.closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5.0)


class _ShardStream:
    """Parent-side view of one shard's monotone match stream."""

    __slots__ = ("shard_id", "buffer", "last_score", "exhausted",
                 "stopped", "requested")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.buffer: List[Match] = []
        self.last_score: Optional[float] = None
        self.exhausted = False
        self.stopped = False
        self.requested = False

    @property
    def live(self) -> bool:
        return not (self.exhausted or self.stopped)

    def accept(self, matches: List[Match], exhausted: bool) -> None:
        self.requested = False
        self.buffer.extend(matches)
        if matches:
            self.last_score = matches[-1].score
        if exhausted:
            self.exhausted = True


class _ForkTransport:
    def __init__(self, pool: ShardWorkerPool) -> None:
        self.pool = pool

    def request(self, state: _ShardStream, msg) -> None:
        self.pool.send(state.shard_id, msg)
        state.requested = True

    def collect(self, state: _ShardStream) -> None:
        matches, exhausted = self.pool.recv(state.shard_id)
        state.accept(matches, exhausted)

    def stop(self, state: _ShardStream) -> None:
        self.pool.send(state.shard_id, ("stop",))


class _SerialTransport:
    """In-process transport: same chunked protocol, no processes.

    Used as the ``serial`` backend, as the per-shard inline fallback
    after a worker crash, and by differential tests that need sharded
    semantics without fork overhead.
    """

    def __init__(self, engine: "ShardedEngine") -> None:
        self.engine = engine
        self._streams: Dict[int, object] = {}

    def request(self, state: _ShardStream, msg) -> None:
        if msg[0] == "search":
            star, chunk = msg[1], msg[2]
            matcher = self.engine._local_matcher(state.shard_id)
            self._streams[state.shard_id] = stream = matcher.stream(star)
            state.accept(*_pull_chunk(stream, chunk))
        else:  # ("more", chunk)
            stream = self._streams[state.shard_id]
            state.accept(*_pull_chunk(stream, msg[1]))
        state.requested = False

    def collect(self, state: _ShardStream) -> None:
        pass  # request() already delivered synchronously

    def stop(self, state: _ShardStream) -> None:
        self._streams.pop(state.shard_id, None)


def _finalize_engine(ctx_key: int, pool: Optional[ShardWorkerPool],
                     columns) -> None:
    if pool is not None:
        pool.shutdown()
    if columns is not None:
        columns.unlink()
    _SHARD_CTX.pop(ctx_key, None)


def fork_available() -> bool:
    """True when the fork start method exists (Linux/macOS CPython)."""
    return "fork" in multiprocessing.get_all_start_methods()


class ShardedEngine:
    """Drop-in :class:`~repro.core.framework.Star` variant that executes
    star queries across graph shards.

    Star-shaped, unbudgeted queries run sharded; anything else (general
    shapes need the rank join over decompositions, budgets need unified
    accounting) transparently falls back to an internal single-process
    :class:`Star` sharing the same scorer, so results and reports stay
    consistent either way.

    Args:
        shards: shard count (>= 1).
        partition: ``hash`` or ``pivot-type``.
        backend: ``auto`` (fork where available, else serial), ``fork``
            (serial fallback where fork is missing) or ``serial``.
        chunk_size: matches pulled per shard round trip; defaults to
            each search's ``k`` (the global top-k is contained in the
            union of per-shard top-k, so one round usually suffices).
        Remaining keyword arguments match :class:`Star`.
    """

    def __init__(
        self,
        graph,
        scorer: Optional[ScoringFunction] = None,
        config: Optional[ScoringConfig] = None,
        shards: int = 2,
        partition: str = "hash",
        backend: str = "auto",
        chunk_size: Optional[int] = None,
        d: int = 1,
        alpha: Optional[float] = None,
        decomposition_method: Optional[str] = None,
        lam: float = 1.0,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
        directed: bool = False,
        use_index: str = "auto",
        use_semantic: str = "auto",
        algorithm: str = "auto",
        plan: str = "static",
        planner=None,
        plan_model: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise SearchError(f"shards must be >= 1, got {shards}")
        if backend not in BACKENDS:
            raise SearchError(
                f"unknown shard backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise SearchError(f"chunk_size must be >= 1, got {chunk_size}")
        self.engine = Star(
            graph, scorer=scorer, config=config, d=d, alpha=alpha,
            decomposition_method=decomposition_method, lam=lam,
            injective=injective, candidate_limit=candidate_limit,
            directed=directed, use_index=use_index,
            use_semantic=use_semantic, algorithm=algorithm, plan=plan,
            planner=planner, plan_model=plan_model,
        )
        self.graph = graph
        self.scorer = self.engine.scorer
        self.num_shards = shards
        self.partition_strategy = partition
        self.chunk_size = chunk_size
        self.backend = (
            "fork" if backend in ("auto", "fork") and fork_available()
            else "serial"
        )
        self._opts = {
            "d": d, "injective": injective,
            "candidate_limit": candidate_limit, "directed": directed,
        }
        self.last_report: Optional[SearchReport] = None
        self.last_stats: Optional[dict] = None
        self.last_engine_stats = None
        #: Per-search sharding telemetry (mirrors the ``shard.*``
        #: counters); ``None`` until the first sharded search.
        self.last_shard_stats: Optional[dict] = None
        self._local_matchers: Dict[int, object] = {}
        self._closed = False

        self._partition: Optional[GraphPartition] = None
        self._columns = None
        self._pool: Optional[ShardWorkerPool] = None
        self._ctx_key: Optional[int] = None
        self._finalizer = weakref.finalize(
            self, _finalize_engine, -1, None, None
        )
        self._rebuild()

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """(Re)partition and (re)start workers for the current graph
        version; the previous generation is torn down first."""
        self._teardown()
        self._partition = partition_graph(
            self.graph, self.num_shards, self.partition_strategy,
            replication_depth=self._opts["d"],
        )
        self._local_matchers = {}
        index = self.scorer.graph_index
        handle = None
        store_path = None
        if self.backend == "fork":
            if index is not None:
                index.refresh()
                store_path = getattr(index, "store_path", None)
                if store_path is None:
                    self._columns = export_index(
                        index, corpus=self.scorer.corpus)
                    handle = self._columns.handle
                # else: the index is mmap-attached to an RKGS2 store --
                # workers re-open the file (one OS page cache machine-
                # wide) instead of shipping a shm segment.
            self._ctx_key = next(_CTX_IDS)
            _SHARD_CTX[self._ctx_key] = {
                "graph": self.graph,
                "config": self.scorer.config,
                "partition": self._partition,
                "shm_handle": handle,
                "store_path": store_path,
                "store_mode": getattr(index, "mode", "auto"),
                "opts": self._opts,
            }
            self._pool = ShardWorkerPool(self._ctx_key, self.num_shards)
        obs.set_gauge("shard.count", self.num_shards)
        obs.set_gauge("shard.replication_factor",
                      self._partition.replication_factor)
        self._finalizer.detach()
        self._finalizer = weakref.finalize(
            self, _finalize_engine,
            self._ctx_key if self._ctx_key is not None else -1,
            self._pool, self._columns,
        )

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._columns is not None:
            self._columns.unlink()
            self._columns = None
        if self._ctx_key is not None:
            _SHARD_CTX.pop(self._ctx_key, None)
            self._ctx_key = None

    def close(self) -> None:
        """Stop workers and unlink shared-memory segments (idempotent)."""
        self._closed = True
        self._finalizer.detach()
        self._teardown()

    def refresh(self) -> None:
        """Resynchronize with a mutated graph: refresh the shared scorer,
        re-partition, re-export and restart the worker generation."""
        self.scorer.refresh()
        index = self.scorer.graph_index
        if index is not None:
            index.refresh()
        self._rebuild()

    # ------------------------------------------------------------------
    def _local_matcher(self, shard_id: int):
        matcher = self._local_matchers.get(shard_id)
        if matcher is None:
            matcher = _scoped_matcher(
                self.scorer, self._opts,
                self._partition.owned[shard_id],
                self._partition.halos[shard_id],
            )
            self._local_matchers[shard_id] = matcher
        return matcher

    # ------------------------------------------------------------------
    def search(
        self,
        query: Union[Query, StarQuery],
        k: int,
        budget: Optional[Budget] = None,
    ) -> List[Match]:
        """Top-k matches of *query*; star shapes run sharded.

        Raises:
            SearchError: for non-positive k or a closed engine.
        """
        if self._closed:
            raise SearchError("ShardedEngine is closed")
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        star: Optional[StarQuery] = None
        if isinstance(query, StarQuery):
            star = query
        else:
            query.validate()
            if query.is_star():
                star = StarQuery.from_query(query)
        if star is None or budget is not None:
            obs.count("shard.fallback_queries")
            try:
                return self.engine.search(query, k, budget=budget)
            finally:
                self.last_report = self.engine.last_report
                self.last_stats = self.engine.last_stats
                self.last_engine_stats = self.engine.last_engine_stats
        if self._partition.graph_version != self.graph.version:
            self.refresh()
        return self._search_star(star, k)

    # ------------------------------------------------------------------
    def _search_star(self, star: StarQuery, k: int) -> List[Match]:
        chunk = self.chunk_size or k
        transport = (
            _ForkTransport(self._pool) if self.backend == "fork"
            else _SerialTransport(self)
        )
        states = [_ShardStream(i) for i in range(self.num_shards)]
        merger = RankMerger(k)
        stats = {
            "shards": self.num_shards,
            "streams_opened": self.num_shards,
            "matches_pulled": [0] * self.num_shards,
            "chunks": 0,
            "bound_terminated": 0,
            "dedup_hits": 0,
            "worker_crashes": 0,
            "inline_fallbacks": 0,
        }
        obs.count("shard.searches")
        obs.count("shard.streams_opened", self.num_shards)
        # Re-published per search: tracers are usually enabled after the
        # engine was built, and gauges merge by max across snapshots.
        obs.set_gauge("shard.count", self.num_shards)
        obs.set_gauge("shard.replication_factor",
                      self._partition.replication_factor)

        with obs.trace("shard.search", shards=self.num_shards, k=k):
            # Open every stream first (fork workers start concurrently),
            # then collect -- the send/collect split is the parallelism.
            for state in states:
                self._request(transport, state, ("search", star, chunk),
                              star, chunk, stats)
            while True:
                for state in states:
                    if state.requested:
                        self._collect(transport, state, star, chunk, stats)
                for state in states:
                    while state.buffer:
                        match = state.buffer.pop(0)
                        stats["matches_pulled"][state.shard_id] += 1
                        if not merger.offer(match):
                            stats["dedup_hits"] += 1
                # HRJN bound per shard: the stream is monotone, so its
                # last delivered score bounds everything still unseen.
                for state in states:
                    if state.live and not merger.wants(state.last_score):
                        state.stopped = True
                        stats["bound_terminated"] += 1
                        try:
                            transport.stop(state)
                        except _WorkerCrash:
                            # Dying after being told to stop loses
                            # nothing; respawn for the next query.
                            self._note_crash(state, stats)
                live = [s for s in states if s.live]
                if not live:
                    break
                for state in live:
                    self._request(transport, state, ("more", chunk),
                                  star, chunk, stats)

        results = merger.results()
        obs.count_many({
            "shard.matches_pulled": sum(stats["matches_pulled"]),
            "shard.chunks": stats["chunks"],
            "shard.bound_terminated": stats["bound_terminated"],
            "shard.dedup_hits": stats["dedup_hits"],
        })
        stats["merged"] = len(results)
        self.last_shard_stats = stats
        self.last_report = SearchReport.from_budget("shard", None,
                                                    len(results))
        self.last_stats = None
        self.last_engine_stats = None
        return results

    def _request(self, transport, state: _ShardStream, msg,
                 star: StarQuery, chunk: int, stats) -> None:
        stats["chunks"] += 1
        try:
            transport.request(state, msg)
        except _WorkerCrash:
            self._note_crash(state, stats)
            self._restart_inline(state, star, chunk, stats)

    def _collect(self, transport, state: _ShardStream, star: StarQuery,
                 chunk: int, stats) -> None:
        try:
            transport.collect(state)
        except _WorkerCrash:
            self._note_crash(state, stats)
            self._restart_inline(state, star, chunk, stats)

    def _restart_inline(self, state: _ShardStream, star: StarQuery,
                        chunk: int, stats) -> None:
        # The chunks already merged from this shard stay valid (the
        # merger dedups re-offered matches); restart its stream from
        # the top, inline, to recover the remainder exactly.
        state.buffer.clear()
        state.last_score = None
        state.exhausted = False
        self._run_inline(state, ("search", star, chunk), stats)

    def _note_crash(self, state: _ShardStream, stats) -> None:
        stats["worker_crashes"] += 1
        obs.count("shard.worker_crashes")
        if self._pool is not None:
            self._pool.respawn(state.shard_id)

    def _run_inline(self, state: _ShardStream, msg, stats) -> None:
        """Serve one shard's request in-process after its worker died."""
        stats["inline_fallbacks"] += 1
        obs.count("shard.inline_fallbacks")
        inline = _SerialTransport(self)
        inline.request(state, msg)
        stream = inline._streams.get(state.shard_id)
        while not state.exhausted:
            state.accept(*_pull_chunk(stream, 1 << 12))

    # ------------------------------------------------------------------
    @property
    def partition(self) -> GraphPartition:
        return self._partition

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
