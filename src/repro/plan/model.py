"""Stdlib-only learned cost model over discretized plans.

One ridge regression per ``(query class, arm)`` pair maps the feature
vector (:mod:`repro.plan.features`) to predicted ``log1p`` cost units.
Per-arm models rather than one shared model with arm indicators: the
arms differ *structurally* (eager traversal vs. lazy propagation vs.
indexed scan), so their cost surfaces have different shapes, and the
feature space is small enough that a dozen independent regressions are
still cheap.

The model keeps only **sufficient statistics** per arm (X'X, X'y, n) --
O(p^2) memory independent of the number of samples -- so it trains
online, persists to a small JSON file, and resumes training after a
load.  Fitting solves the ridge normal equations with plain Gaussian
elimination; no numpy.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.plan.features import FEATURE_NAMES

#: Deterministic counter -> cost-unit weights.  Calibrated against wall
#: time on the synthetic dbpedia_like workloads so that cost units per
#: microsecond stay roughly constant *across arms* (the planner compares
#: predicted costs between arms, so any per-arm skew in the weighting
#: directly biases plan choice).  A memoized node-score call (string
#: similarity over n-grams and phonetics) is the unit; a traversal step
#: or scanned posting entry is an adjacency/array lookup, more than two
#: orders of magnitude cheaper; lazy message propagation and lattice
#: bookkeeping sit in between; pivot evaluation carries per-pivot setup.
#: Only deterministic counters appear -- never wall-clock.
COST_WEIGHTS: Dict[str, float] = {
    "node_score_calls": 1.0,
    "edge_score_calls": 0.5,
    "nodes_traversed": 0.005,
    "messages_propagated": 0.07,
    "lattice_pops": 0.05,
    "joins_attempted": 0.05,
    "pivots_evaluated": 0.3,
    "postings_scanned": 0.003,
}

#: Bumped when the persisted layout changes incompatibly.
MODEL_VERSION = 1


class PlanModelError(ReproError):
    """Raised for unreadable or schema-incompatible model files."""


def cost_units(counters: Mapping[str, int]) -> float:
    """Weighted deterministic cost of one search run.

    The constant 1.0 floor keeps log-space targets finite for degenerate
    runs (empty result, all counters zero) and gives every observation a
    nonzero baseline dispatch cost.
    """
    total = 1.0
    for key, weight in COST_WEIGHTS.items():
        value = counters.get(key, 0)
        if value:
            total += weight * value
    return total


def _solve(a: List[List[float]], b: List[float]) -> Optional[List[float]]:
    """Solve ``a @ x = b`` by Gaussian elimination with partial pivoting.

    Returns None when the system is numerically singular (should not
    happen with a positive ridge term, but guard anyway).
    """
    n = len(b)
    # Work on copies; the caller keeps accumulating into the originals.
    m = [row[:] + [b[i]] for i, row in enumerate(a)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(m[r][col]))
        if abs(m[pivot][col]) < 1e-12:
            return None
        if pivot != col:
            m[col], m[pivot] = m[pivot], m[col]
        inv = 1.0 / m[col][col]
        for r in range(col + 1, n):
            factor = m[r][col] * inv
            if factor:
                for c in range(col, n + 1):
                    m[r][c] -= factor * m[col][c]
    x = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = m[row][n]
        for c in range(row + 1, n):
            acc -= m[row][c] * x[c]
        x[row] = acc / m[row][row]
    return x


class _ArmStats:
    """Sufficient statistics and cached fit for one (class, arm) pair."""

    __slots__ = ("n", "xtx", "xty", "_weights", "_dirty")

    def __init__(self, p: int) -> None:
        self.n = 0
        self.xtx = [[0.0] * p for _ in range(p)]
        self.xty = [0.0] * p
        self._weights: Optional[List[float]] = None
        self._dirty = False

    def add(self, x: Sequence[float], y: float) -> None:
        p = len(self.xty)
        for i in range(p):
            xi = x[i]
            if xi:
                row = self.xtx[i]
                for j in range(p):
                    row[j] += xi * x[j]
                self.xty[i] += xi * y
        self.n += 1
        self._dirty = True

    def weights(self, ridge: float) -> Optional[List[float]]:
        if self._dirty or self._weights is None:
            p = len(self.xty)
            a = [row[:] for row in self.xtx]
            for i in range(p):
                a[i][i] += ridge
            self._weights = _solve(a, self.xty)
            self._dirty = False
        return self._weights


class CostModel:
    """Per-arm ridge regression: features -> predicted log1p cost units.

    Args:
        ridge: L2 regularization strength (also the numerical guard).
        min_samples: below this many observations for an arm, predictions
            return None -- the planner's cold-model guardrail trigger.
    """

    def __init__(self, ridge: float = 1.0, min_samples: int = 8) -> None:
        self.ridge = ridge
        self.min_samples = min_samples
        self.feature_names: Tuple[str, ...] = FEATURE_NAMES
        self._arms: Dict[Tuple[str, str], _ArmStats] = {}

    # ------------------------------------------------------------------
    def observe(
        self, class_key: str, arm: str, vector: Sequence[float], cost: float
    ) -> None:
        """Record one (features, arm, observed cost) sample."""
        key = (class_key, arm)
        stats = self._arms.get(key)
        if stats is None:
            stats = self._arms[key] = _ArmStats(len(self.feature_names))
        stats.add(vector, math.log1p(max(cost, 0.0)))

    def samples(self, class_key: str, arm: str) -> int:
        stats = self._arms.get((class_key, arm))
        return stats.n if stats is not None else 0

    def predict(
        self, class_key: str, arm: str, vector: Sequence[float]
    ) -> Optional[float]:
        """Predicted log1p cost, or None while the arm is cold."""
        stats = self._arms.get((class_key, arm))
        if stats is None or stats.n < self.min_samples:
            return None
        weights = stats.weights(self.ridge)
        if weights is None:
            return None
        return sum(w * x for w, x in zip(weights, vector))

    def arms_for(self, class_key: str) -> List[str]:
        """Arms with any observations for *class_key*, sorted."""
        return sorted(a for (c, a) in self._arms if c == class_key)

    # ------------------------------------------------------------------
    def fit_store(self, store) -> int:
        """Feed every record of an :class:`ExperienceStore` into the model.

        Returns the number of records consumed.  Records whose feature
        dicts miss the current layout raise :class:`PlanModelError`.
        """
        count = 0
        for record in store:
            try:
                vector = [record.features[name] for name in self.feature_names]
            except KeyError as exc:
                raise PlanModelError(
                    f"experience record lacks feature {exc} (layout mismatch)"
                ) from exc
            self.observe(record.class_key, record.arm, vector, record.cost)
            count += 1
        return count

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist sufficient statistics as deterministic JSON."""
        arms = {}
        for (class_key, arm), stats in sorted(self._arms.items()):
            arms[f"{class_key}\t{arm}"] = {
                "n": stats.n,
                "xtx": [[round(v, 12) for v in row] for row in stats.xtx],
                "xty": [round(v, 12) for v in stats.xty],
            }
        doc = {
            "arms": arms,
            "feature_names": list(self.feature_names),
            "min_samples": self.min_samples,
            "ridge": self.ridge,
            "version": MODEL_VERSION,
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "CostModel":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise PlanModelError(f"cannot read plan model {path!r}: {exc}") from exc
        except ValueError as exc:
            raise PlanModelError(f"malformed plan model {path!r}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("version") != MODEL_VERSION:
            raise PlanModelError(
                f"plan model {path!r} has unsupported version "
                f"{doc.get('version') if isinstance(doc, dict) else '?'}"
            )
        names = tuple(doc.get("feature_names", ()))
        if names != FEATURE_NAMES:
            raise PlanModelError(
                f"plan model {path!r} was fitted for feature layout {names}, "
                f"current layout is {FEATURE_NAMES}"
            )
        model = cls(
            ridge=float(doc.get("ridge", 1.0)),
            min_samples=int(doc.get("min_samples", 8)),
        )
        p = len(FEATURE_NAMES)
        for key, payload in doc.get("arms", {}).items():
            class_key, _, arm = key.partition("\t")
            stats = _ArmStats(p)
            stats.n = int(payload["n"])
            xtx = payload["xtx"]
            xty = payload["xty"]
            if len(xtx) != p or len(xty) != p:
                raise PlanModelError(
                    f"plan model {path!r} arm {key!r} has wrong dimensions"
                )
            stats.xtx = [[float(v) for v in row] for row in xtx]
            stats.xty = [float(v) for v in xty]
            stats._dirty = True
            model._arms[(class_key, arm)] = stats
        return model
