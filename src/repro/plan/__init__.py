"""Learned, self-tuning query planning (the ROADMAP's final open item).

Every performance knob the paper exposes -- decomposition method,
``use_index`` routing, the star procedure itself, alpha -- was fixed per
engine until now, even though per-query costs vary by multiples: stard
beats eager stark on broad pivots but loses badly on selective ones,
index routing wins exactly when postings are selective, and the sampling
decompositions (simdec/simtop) only pay off when their decomposition
quality recoups the sampler cost.  ``repro.plan`` closes the loop that
"Learning to Speed Up Query Planning in Graph Databases" (arXiv
1801.06766) sketches for this engine family:

* :mod:`repro.plan.features` -- a cheap per-query feature vector (query
  shape, posting selectivity, graph stats, cache warmth, budget
  tightness); pure index lookups, no scoring.
* :mod:`repro.plan.experience` -- a byte-deterministic JSONL experience
  store: features + chosen knobs + observed deterministic cost counters
  (never wall-clock) per search.
* :mod:`repro.plan.model` -- a stdlib-only per-arm ridge-regression cost
  model over the discretized plan space, with JSON persistence.
* :mod:`repro.plan.planner` -- :class:`QueryPlanner`: picks the arm with
  the lowest predicted cost, guarded so a cold or uncertain model always
  falls back to the static default plan.

Every knob the planner may touch is **result-preserving**: the star
procedures (stark / stard / hybrid) are exact and interchangeable, index
routing is byte-identical by construction, and the alpha-scheme weights
partition each shared node's contribution so joined scores are
alpha-independent.  A planned search therefore returns the same top-k
scores as the static engine, rank by rank (procedures may order members
of an exact score tie differently).  The differential suite
(``tests/test_plan_differential.py``) pins this contract.
"""

from repro.plan.experience import ExperienceRecord, ExperienceStore
from repro.plan.features import FEATURE_NAMES, QueryFeatures, extract_features
from repro.plan.model import COST_WEIGHTS, CostModel, cost_units
from repro.plan.planner import PlanDecision, QueryPlanner, default_static_arm

__all__ = [
    "COST_WEIGHTS",
    "CostModel",
    "ExperienceRecord",
    "ExperienceStore",
    "FEATURE_NAMES",
    "PlanDecision",
    "QueryFeatures",
    "QueryPlanner",
    "cost_units",
    "default_static_arm",
    "extract_features",
]
