"""Byte-deterministic JSONL experience store for the learned planner.

Each line is one completed search: the query's feature vector, the arm
(knob combination) the planner chose, and the observed cost in
**deterministic counter units** -- scorer calls, traversed nodes,
lattice pops, propagated messages.  Wall-clock never enters a record
body, so two runs of the same seeded workload produce byte-identical
stores (the determinism contract the metrics artifacts already follow:
``json.dumps(..., sort_keys=True)``, no timestamps, 9-decimal rounding).

The store is the training set for :class:`repro.plan.model.CostModel`;
``repro plan-fit`` replays it into a fitted model file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import ReproError

#: Schema version stamped on every record; readers skip newer majors.
RECORD_VERSION = 1


class ExperienceError(ReproError):
    """Raised for unreadable or schema-incompatible experience files."""


@dataclass(frozen=True)
class ExperienceRecord:
    """One (features, arm, observed cost) sample.

    Attributes:
        class_key: query class (``star_d1`` / ``star_dn`` / ``general``).
        features: feature name -> value (rounded, see features module).
        arm: canonical arm identifier string, e.g. ``stard|index=on``.
        cost: observed deterministic cost units (weighted counter sum).
        counters: the raw counters the cost was derived from.
    """

    class_key: str
    features: Dict[str, float]
    arm: str
    cost: float
    counters: Dict[str, int]

    def to_json(self) -> str:
        """Canonical single-line encoding (sorted keys, fixed rounding)."""
        doc = {
            "arm": self.arm,
            "class": self.class_key,
            "cost": round(self.cost, 9),
            "counters": {k: int(v) for k, v in self.counters.items()},
            "features": self.features,
            "v": RECORD_VERSION,
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "ExperienceRecord":
        try:
            doc = json.loads(line)
        except ValueError as exc:
            raise ExperienceError(f"malformed experience line: {exc}") from exc
        if not isinstance(doc, dict) or "arm" not in doc:
            raise ExperienceError("experience line is not a record object")
        if int(doc.get("v", 0)) > RECORD_VERSION:
            raise ExperienceError(
                f"experience record version {doc.get('v')} is newer than "
                f"supported version {RECORD_VERSION}"
            )
        return cls(
            class_key=str(doc.get("class", "")),
            features={str(k): float(v) for k, v in doc.get("features", {}).items()},
            arm=str(doc["arm"]),
            cost=float(doc.get("cost", 0.0)),
            counters={str(k): int(v) for k, v in doc.get("counters", {}).items()},
        )


class ExperienceStore:
    """Append-only JSONL sink plus in-memory buffer.

    With ``path=None`` the store is memory-only (the default inside a
    planner: records accumulate for online fitting without touching
    disk).  With a path, every append also writes one line; the file is
    opened lazily and flushed per record so crashes lose at most the
    in-flight line.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.records: List[ExperienceRecord] = []
        self._fh = None

    # ------------------------------------------------------------------
    def append(self, record: ExperienceRecord) -> None:
        self.records.append(record)
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(record.to_json() + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ExperienceRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "ExperienceStore":
        """Read an existing JSONL file into a memory-only store."""
        if not os.path.exists(path):
            raise ExperienceError(f"experience file not found: {path}")
        store = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    store.records.append(ExperienceRecord.from_json(line))
        return store
