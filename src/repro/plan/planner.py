"""The self-tuning query planner.

:class:`QueryPlanner` sits in front of ``Star.search``: it extracts the
query's features, enumerates the admissible **arms** (knob combinations)
for the query's class, and picks the arm with the lowest predicted cost
under a safe-fallback guardrail:

* knobs the caller pinned at construction (explicit ``alpha=``,
  ``decomposition_method=``, ``algorithm=``, a forced index mode) are
  never overridden -- the menu collapses to the pinned value;
* while the model is **cold** for any relevant arm (< ``min_samples``
  observations), ``learned`` mode runs the static default plan, and
  ``auto`` mode deterministically explores the least-sampled arm;
* even with a warm model, a non-default arm is chosen only when its
  predicted cost undercuts the static plan's by at least ``margin``
  (5% by default) -- within-noise predictions fall back to static;
* budgeted and prebuilt-decomposition searches always run static:
  budgets tie observable behavior (anytime best-so-far answers, charge
  order) to the specific procedure, so switching procedures there could
  change results.

Every arm is result-preserving (see the package docstring): a planned
search returns the same top-k scores as the static engine, rank by rank
-- only the representative of an *exact* score tie may differ between
procedures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.plan.experience import ExperienceRecord, ExperienceStore
from repro.plan.features import (
    CLASS_GENERAL,
    CLASS_STAR_D1,
    QueryFeatures,
    extract_features,
)
from repro.plan.model import COST_WEIGHTS, CostModel, cost_units

#: Decomposition methods the planner may try for general queries.  A
#: deliberate subset of ``repro.query.decomposition.METHODS``: the two
#:  sampling methods (simdec/simtop) have near-identical cost profiles,
#: so only simdec represents them in the menu.
PLAN_METHODS = ("simdec", "simsize", "maxdeg")

#: Alpha-scheme splits the planner may try.  Joined scores are
#: alpha-independent (the weights partition each shared node's
#: contribution), so alpha only shifts work between streams.
PLAN_ALPHAS = (0.2, 0.5)


def _fmt_alpha(alpha: float) -> str:
    return f"{alpha:g}"


def default_static_arm(class_key: str) -> str:
    """The static default plan's arm id for a default-knob engine.

    Used by consumers that need a model prediction without an engine in
    hand (e.g. the batch layer's learned dispatch ordering).
    """
    if class_key == CLASS_GENERAL:
        return "method=simdec|alpha=0.5|idx=auto"
    alg = "stark" if class_key == CLASS_STAR_D1 else "stard"
    return f"alg={alg}|idx=auto"


@dataclass
class PlanDecision:
    """One query's chosen plan, with full provenance for tracing.

    ``source`` is ``static`` (default plan: pinned, cold, budgeted, or
    guardrail fallback), ``explore`` (auto-mode round-robin over cold
    arms) or ``learned`` (model pick that cleared the guardrail).
    """

    class_key: str
    arm: str
    source: str
    overrides: Dict[str, object] = field(default_factory=dict)
    features: Optional[QueryFeatures] = None
    predicted: Optional[float] = None
    static_arm: str = ""
    static_predicted: Optional[float] = None
    reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        """Deterministic summary for metrics artifacts and ``explain``."""
        doc: Dict[str, object] = {
            "arm": self.arm,
            "class": self.class_key,
            "source": self.source,
            "static_arm": self.static_arm,
        }
        if self.reason:
            doc["reason"] = self.reason
        if self.predicted is not None:
            doc["predicted_log_cost"] = round(self.predicted, 9)
        if self.static_predicted is not None:
            doc["static_predicted_log_cost"] = round(self.static_predicted, 9)
        return doc


class QueryPlanner:
    """Per-query knob selection with online learning.

    Args:
        mode: ``auto`` explores cold arms (deterministically, least
            sampled first) and exploits once warm; ``learned`` never
            explores -- static until the model warms up (or arrives
            pre-fitted via *model*).
        model: a (possibly pre-fitted) :class:`CostModel`; a fresh cold
            one is built when omitted.
        store: optional :class:`ExperienceStore` receiving every
            observed (features, arm, cost) sample.
        margin: minimum predicted relative cost reduction before a
            non-default arm is chosen (the guardrail).
    """

    def __init__(
        self,
        mode: str = "auto",
        model: Optional[CostModel] = None,
        store: Optional[ExperienceStore] = None,
        margin: float = 0.05,
    ) -> None:
        if mode not in ("auto", "learned"):
            raise ValueError(f"planner mode must be auto or learned, got {mode!r}")
        if not (0.0 <= margin < 1.0):
            raise ValueError(f"margin must be in [0, 1), got {margin}")
        self.mode = mode
        self.model = model if model is not None else CostModel()
        self.store = store
        self.margin = margin
        #: ln(1 - margin): the guardrail threshold in log-cost space.
        self._log_margin = math.log(1.0 - margin) if margin > 0.0 else 0.0
        #: Decisions taken, by source -- cheap planner introspection.
        self.decisions: Dict[str, int] = {"static": 0, "explore": 0, "learned": 0}

    # ------------------------------------------------------------------
    @classmethod
    def for_engine(
        cls,
        mode: str = "auto",
        model_path: Optional[str] = None,
        experience_path: Optional[str] = None,
    ) -> "QueryPlanner":
        """Build the planner ``Star(plan=...)`` asks for.

        *model_path* loads a fitted :class:`CostModel` persisted by
        ``CostModel.save`` (e.g. next to a graph snapshot);
        *experience_path* opens a JSONL experience sink.
        """
        model = CostModel.load(model_path) if model_path else None
        store = ExperienceStore(experience_path) if experience_path else None
        return cls(mode=mode, model=model, store=store)

    # ------------------------------------------------------------------
    def _resolve_algorithm(self, engine) -> str:
        if engine.algorithm != "auto":
            return engine.algorithm
        return "stark" if engine.d == 1 else "stard"

    def _index_choices(self, engine) -> List[str]:
        """``auto`` = leave the engine's routing alone (the static
        default); ``on`` = force index routing for this query."""
        index = getattr(engine.scorer, "graph_index", None)
        if index is None or engine.use_index != "auto":
            return ["auto"]
        return ["auto", "on"]

    def _star_menu(self, engine) -> Tuple[List[str], str]:
        static_alg = self._resolve_algorithm(engine)
        if engine.directed or engine.algorithm != "auto":
            # Directed matching is stark-only; an explicit algorithm is a
            # pinned caller choice.  Either way: no switching.
            algs = [static_alg]
        elif engine.d == 1:
            algs = ["stark", "hybrid"]
        else:
            algs = ["stark", "stard", "hybrid"]
        arms = [
            f"alg={alg}|idx={idx}"
            for alg in algs
            for idx in self._index_choices(engine)
        ]
        return arms, f"alg={static_alg}|idx=auto"

    def _general_menu(self, engine) -> Tuple[List[str], str]:
        if engine._method_pinned:
            methods = [engine.decomposition_method]
        else:
            methods = sorted({*PLAN_METHODS, engine.decomposition_method})
        if engine._alpha_pinned:
            alphas = [engine.alpha]
        else:
            alphas = sorted({*PLAN_ALPHAS, engine.alpha})
        arms = [
            f"method={m}|alpha={_fmt_alpha(a)}|idx={idx}"
            for m in methods
            for a in alphas
            for idx in self._index_choices(engine)
        ]
        static = (
            f"method={engine.decomposition_method}"
            f"|alpha={_fmt_alpha(engine.alpha)}|idx=auto"
        )
        return arms, static

    def _overrides_for(self, engine, class_key: str, arm: str) -> Dict[str, object]:
        overrides: Dict[str, object] = {}
        for part in arm.split("|"):
            key, _, value = part.partition("=")
            if key == "alg":
                overrides["algorithm"] = value
            elif key == "idx":
                if value != "auto":
                    overrides["index_mode"] = value
            elif key == "method":
                if value != engine.decomposition_method:
                    overrides["decomposition_method"] = value
            elif key == "alpha":
                alpha = float(value)
                if alpha != engine.alpha:
                    overrides["alpha"] = alpha
        return overrides

    # ------------------------------------------------------------------
    def plan(
        self,
        engine,
        query,
        k: int,
        budget=None,
        prebuilt_decomposition: bool = False,
    ) -> PlanDecision:
        """Choose the plan for one search call (see module docstring)."""
        if budget is not None or prebuilt_decomposition:
            reason = "budget" if budget is not None else "prebuilt-decomposition"
            self.decisions["static"] += 1
            return PlanDecision(
                class_key="", arm="", source="static", reason=reason
            )
        features = extract_features(
            engine.scorer, query, k, d=engine.d, budget=budget
        )
        class_key = features.class_key
        if class_key == CLASS_GENERAL:
            arms, static_arm = self._general_menu(engine)
        else:
            arms, static_arm = self._star_menu(engine)
        if static_arm not in arms:
            arms = [static_arm] + arms

        chosen = static_arm
        source = "static"
        reason = ""
        predicted: Optional[float] = None
        static_predicted: Optional[float] = None
        if len(arms) == 1:
            reason = "all-knobs-pinned"
        else:
            model = self.model
            cold = [a for a in arms if model.samples(class_key, a) < model.min_samples]
            if cold and self.mode == "auto":
                # Deterministic exploration: least-sampled arm first,
                # lexicographic tie-break -- reproducible run to run.
                chosen = min(cold, key=lambda a: (model.samples(class_key, a), a))
                source = "explore"
            elif cold:
                reason = "model-cold"
            else:
                vector = features.vector
                scored = [
                    (model.predict(class_key, a, vector), a) for a in arms
                ]
                static_predicted = next(
                    p for p, a in scored if a == static_arm
                )
                usable = [(p, a) for p, a in scored if p is not None]
                if static_predicted is None or not usable:
                    reason = "model-singular"
                else:
                    best_pred, best_arm = min(usable)
                    if (
                        best_arm != static_arm
                        and best_pred <= static_predicted + self._log_margin
                    ):
                        chosen = best_arm
                        source = "learned"
                        predicted = best_pred
                    else:
                        predicted = static_predicted
                        reason = "within-margin" if best_arm != static_arm else ""

        overrides = (
            {} if chosen == static_arm and source == "static"
            else self._overrides_for(engine, class_key, chosen)
        )
        self.decisions[source] += 1
        return PlanDecision(
            class_key=class_key,
            arm=chosen,
            source=source,
            overrides=overrides,
            features=features,
            predicted=predicted,
            static_arm=static_arm,
            static_predicted=static_predicted,
            reason=reason,
        )

    # ------------------------------------------------------------------
    def observe(
        self,
        decision: PlanDecision,
        engine_stats,
        node_score_calls: int = 0,
        edge_score_calls: int = 0,
        postings_scanned: int = 0,
    ) -> None:
        """Feed one completed search back into the model and the store.

        Costs are deterministic counter units: the engine's unified
        stats plus the scorer-call and posting-scan deltas the framework
        measured around the search (posting scans make index-routing
        overhead visible to the model -- the routed search itself runs
        the same scoring).  Budgeted / prebuilt decisions carry no
        features and are skipped -- their static plan was forced, not
        chosen.
        """
        if decision.features is None:
            return
        counters: Dict[str, int] = {
            "node_score_calls": int(node_score_calls),
            "edge_score_calls": int(edge_score_calls),
        }
        if postings_scanned:
            counters["postings_scanned"] = int(postings_scanned)
        if engine_stats is not None:
            for key in COST_WEIGHTS:
                if key in counters:
                    continue
                value = getattr(engine_stats, key, 0)
                if value:
                    counters[key] = int(value)
        cost = cost_units(counters)
        self.model.observe(
            decision.class_key, decision.arm, decision.features.vector, cost
        )
        if self.store is not None:
            self.store.append(
                ExperienceRecord(
                    class_key=decision.class_key,
                    features=decision.features.as_dict(),
                    arm=decision.arm,
                    cost=cost,
                    counters=dict(sorted(counters.items())),
                )
            )

    # ------------------------------------------------------------------
    def save_model(self, path: str) -> None:
        """Persist the current model (``CostModel.save``)."""
        self.model.save(path)

    def __repr__(self) -> str:
        return (
            f"QueryPlanner(mode={self.mode!r}, margin={self.margin}, "
            f"decisions={self.decisions})"
        )
