"""Cheap per-query feature extraction for the learned planner.

Everything here is computed from **index lookups only** -- posting-list
lengths, subtype-closure sizes, query shape, graph-level statistics --
never by scoring candidates.  Extraction cost is O(query tokens), a few
microseconds, so the planner can afford it on every search call.

Features live in log space (``log1p``) because the cost counters they
predict span several orders of magnitude and the downstream model is a
linear ridge regression: multiplicative cost structure (cost ~ pivot
candidates x per-pivot work) becomes additive in the logs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.candidates import expanded_query_tokens
from repro.query.model import StarQuery
from repro.similarity.scoring import ScoringFunction

#: Feature vector layout, in order.  The model file records this tuple so
#: a persisted model refuses to load against a different layout.
FEATURE_NAMES: Tuple[str, ...] = (
    "bias",
    "log_qnodes",
    "log_qedges",
    "log_k",
    "d",
    "is_star",
    "wildcard_frac",
    "typed_frac",
    "log_pivot_mass",
    "log_leaf_mass",
    "log_max_mass",
    "log_total_mass",
    "log_graph_nodes",
    "log_avg_degree",
    "cache_warm",
    "budget_flag",
)

#: Query classes the planner discretizes plans over.  Star queries at
#: d=1 and d>=2 face different algorithm menus (the d>=2 traversal cost
#: profile is where stard/stark diverge most), and general queries add
#: the decomposition knobs.
CLASS_STAR_D1 = "star_d1"
CLASS_STAR_DN = "star_dn"
CLASS_GENERAL = "general"


def _posting_mass(scorer: ScoringFunction, qnode) -> int:
    """Upper bound on the shortlist size for one query node.

    Wildcard + untyped descriptors scan the whole graph; typed ones are
    capped by the subtype closure; named ones by the union of expanded
    token postings (intersected with the closure when both apply).
    """
    graph = scorer.graph
    desc = qnode.descriptor
    if desc.is_wildcard and not desc.keyword_tokens:
        if desc.type:
            return len(graph.nodes_of_subtype(desc.type))
        return graph.num_nodes
    postings = graph.nodes_matching_any(expanded_query_tokens(desc))
    if desc.type:
        # The shortlist unions postings with the subtype closure
        # (``repro.core.candidates.shortlist``); mirror that.
        postings |= graph.nodes_of_subtype(desc.type)
    return len(postings)


@dataclass(frozen=True)
class QueryFeatures:
    """Extracted features plus the class key used for arm grouping."""

    class_key: str
    vector: Tuple[float, ...]

    def as_dict(self) -> Dict[str, float]:
        """Name -> value mapping, rounded for byte-stable serialization."""
        return {
            name: round(value, 9)
            for name, value in zip(FEATURE_NAMES, self.vector)
        }


def extract_features(
    scorer: ScoringFunction,
    query,
    k: int,
    d: int = 1,
    budget=None,
) -> QueryFeatures:
    """Features of running *query* (a :class:`Query` or :class:`StarQuery`).

    Deterministic: depends only on the query, the graph's index state,
    and whether the scorer's memo cache is warm.
    """
    graph = scorer.graph
    if isinstance(query, StarQuery):
        qnodes = [query.pivot] + [leaf for leaf, _edge in query.leaves]
        pivot = query.pivot
        num_nodes, num_edges = len(qnodes), len(query.leaves)
    else:
        num_nodes, num_edges = query.num_nodes, query.num_edges
        qnodes = list(query.nodes)
        # A star-shaped general query is executed by the star procedures
        # (the framework converts it), so classify it as one.
        center = query.star_center() if query.edges or query.nodes else None
        pivot = query.nodes[center] if center is not None else None
    if pivot is not None:
        is_star = 1.0
        class_key = CLASS_STAR_D1 if d <= 1 else CLASS_STAR_DN
    else:
        is_star = 0.0
        class_key = CLASS_GENERAL

    masses: List[int] = [_posting_mass(scorer, qn) for qn in qnodes]
    if pivot is not None:
        pivot_mass = _posting_mass(scorer, pivot)
    else:
        # No designated pivot; the broadest node is the one the
        # decomposer will most likely pivot a subquery on.
        pivot_mass = max(masses, default=0)
    # Mass *away* from the pivot.  Leaf selectivity is the main
    # discriminator between the eager and lazy star procedures: eager
    # scoring pays for every pivot candidate's leaf work up front, so
    # broad leaves favor laziness even when the pivot itself is broad.
    leaf_mass = max(0, sum(masses) - pivot_mass)
    total = len(qnodes) or 1
    wildcard_frac = sum(
        1 for qn in qnodes if qn.descriptor.is_wildcard
    ) / total
    typed_frac = sum(1 for qn in qnodes if qn.descriptor.type) / total
    avg_degree = (2.0 * graph.num_edges / graph.num_nodes) if graph.num_nodes else 0.0

    vector = (
        1.0,
        math.log1p(num_nodes),
        math.log1p(num_edges),
        math.log1p(k),
        float(d),
        is_star,
        wildcard_frac,
        typed_frac,
        math.log1p(pivot_mass),
        math.log1p(leaf_mass),
        math.log1p(max(masses, default=0)),
        math.log1p(sum(masses)),
        math.log1p(graph.num_nodes),
        math.log1p(avg_degree),
        1.0 if scorer._node_cache else 0.0,
        1.0 if budget is not None else 0.0,
    )
    return QueryFeatures(class_key=class_key, vector=vector)
