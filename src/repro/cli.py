"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` -- create a synthetic knowledge graph and save it.
* ``stats``    -- print the Table-I style summary of a saved graph.
* ``search``   -- run a top-k query (edge-pattern language, or keyword
  synthesis via ``--keywords``) over a graph; ``--plan`` turns on the
  learned per-query planner.
* ``trace``    -- run a query with observability on and print the nested
  span tree (per-phase wall/CPU times) plus the metric registry.
* ``batch``    -- run a saved workload, optionally parallel (``--workers``)
  and with the cross-query candidate cache (``--cache``).
* ``workload`` -- generate a star/complex query workload file.
* ``plan-fit`` -- fit the learned planner's cost model from an
  experience JSONL (``search --experience-out``).
* ``learn``    -- train scoring weights on a graph, save the config.
* ``demo``     -- generate a graph, run a sample query, print matches.
* ``snapshot`` -- write a graph as a binary snapshot (ids, tombstones,
  indexes, version and delta-journal tail preserved).
* ``compact``  -- write a graph as an mmap-able ``RKGS2`` store: opening
  one is zero-copy (``--mmap`` on search/trace/batch/serve), and every
  process maps the same file through one OS page cache.
* ``apply-delta`` -- replay a JSONL mutation stream onto a graph and
  save the result as a snapshot.
* ``serve``  -- run the async query service (admission control, priority
  classes, degrade-before-shed, supervised workers) over a saved graph.
* ``client`` -- query a running service (one search, or health/stats).

Every command that reads a graph accepts both the line-JSON format and
the binary snapshot format (sniffed by magic bytes).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import nullcontext
from typing import List, Optional

from repro import obs
from repro.core.framework import Star
from repro.errors import ReproError
from repro.graph import (
    dbpedia_like,
    freebase_like,
    save_graph,
    summarize,
    yago2_like,
)
from repro.query.parser import parse_query
from repro.similarity import ScoringConfig, ScoringFunction

_GENERATORS = {
    "dbpedia": dbpedia_like,
    "yago2": yago2_like,
    "freebase": freebase_like,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STAR: fast top-k search in knowledge graphs "
                    "(ICDE 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic graph")
    gen.add_argument("dataset", choices=sorted(_GENERATORS))
    gen.add_argument("output", help="output path (.kg line-JSON)")
    gen.add_argument("--scale", type=float, default=0.5)
    gen.add_argument("--seed", type=int, default=7)

    stats = sub.add_parser("stats", help="summarize a saved graph")
    stats.add_argument("graph", help="path to a saved graph")

    search = sub.add_parser("search", help="run a top-k query")
    search.add_argument("graph", help="path to a saved graph")
    search.add_argument(
        "query", nargs="?", default=None,
        help="query in the edge-pattern language, e.g. "
             "'(?m:director) -[?]- (Brad:actor)'; use ';' or newlines "
             "between edges (omit with --keywords)",
    )
    search.add_argument("--keywords", default=None, metavar="WORDS",
                        help="synthesize a star query from keywords "
                             "instead of parsing an edge pattern; quote "
                             "multi-word phrases inside WORDS")
    search.add_argument("-k", type=int, default=5)
    search.add_argument("-d", type=int, default=1, help="path bound")
    search.add_argument("--alpha", type=float, default=None,
                        help="alpha-scheme split (default: engine default "
                             "0.5; an explicit value is pinned against "
                             "planner tuning)")
    search.add_argument(
        "--method", default=None,
        choices=("rand", "maxdeg", "simsize", "simtop", "simdec"),
        help="decomposition method (default: engine default simdec; an "
             "explicit value is pinned against planner tuning)",
    )
    search.add_argument("--algorithm", default="auto",
                        choices=("auto", "stark", "stard", "hybrid"),
                        help="star procedure (default: auto = stark at "
                             "d=1, stard at d>=2; all are exact and "
                             "produce score-identical rankings)")
    search.add_argument("--plan", default="static",
                        choices=("static", "auto", "learned"),
                        help="per-query knob planning: static = fixed "
                             "knobs (default), auto = explore + learn "
                             "online, learned = exploit a model "
                             "(see --plan-model); top-k scores are "
                             "identical in every mode")
    search.add_argument("--plan-model", default=None, metavar="PATH",
                        help="fitted cost-model JSON for --plan "
                             "(see 'plan-fit')")
    search.add_argument("--experience-out", default=None, metavar="PATH",
                        help="append planner experience records (JSONL) "
                             "for later 'plan-fit' training")
    search.add_argument("--fast", action="store_true",
                        help="use the fast scoring-measure subset")
    search.add_argument("--explain", action="store_true",
                        help="print a per-measure breakdown of the top match")
    search.add_argument("--config", default=None,
                        help="path to a saved scoring config (JSON)")
    search.add_argument("--directed", action="store_true",
                        help="enforce query-edge orientation (d=1 only)")
    search.add_argument("--use-index", default="auto",
                        choices=("auto", "on", "off"),
                        help="route candidate generation through the "
                             "upper-bound-pruned graph index (results "
                             "are identical; default: auto)")
    search.add_argument("--semantic", default="auto",
                        choices=("auto", "on", "off"), dest="use_semantic",
                        help="augment under-filled token shortlists with "
                             "ANN-sourced, exactly-reranked candidates "
                             "(default: auto = only when the shortlist "
                             "finds nothing)")
    search.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run star queries sharded across N graph "
                             "partitions (exact merged results)")
    search.add_argument("--partition", default="hash",
                        choices=("hash", "pivot-type"),
                        help="shard partition strategy (default: hash)")
    search.add_argument("--timeout-ms", type=float, default=None,
                        help="wall-clock deadline for the search")
    search.add_argument("--budget-nodes", type=int, default=None,
                        help="cap on candidate nodes visited")
    search.add_argument("--anytime", action="store_true",
                        help="on budget trip, return flagged best-so-far "
                             "results instead of failing")
    search.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="run with observability on and write the "
                             "metric/span snapshot as JSON to PATH")
    search.add_argument("--no-timing", action="store_true",
                        help="omit wall-clock fields (elapsed, span "
                             "timings, timing histograms) from "
                             "--metrics-out: byte-deterministic output "
                             "for a fixed graph/query")
    search.add_argument("--mmap", action="store_true",
                        help="open the graph zero-copy (requires an RKGS2 "
                             "store; see 'compact') and attach its index "
                             "columns instead of building them")

    trace = sub.add_parser(
        "trace", help="run a query traced; print the nested span tree"
    )
    trace.add_argument("graph", help="path to a saved graph")
    trace.add_argument(
        "query",
        help="query in the edge-pattern language (see 'search')",
    )
    trace.add_argument("-k", type=int, default=5)
    trace.add_argument("-d", type=int, default=1, help="path bound")
    trace.add_argument("--alpha", type=float, default=None,
                       help="alpha-scheme split (default: engine default "
                            "0.5; an explicit value is pinned against "
                            "planner tuning)")
    trace.add_argument(
        "--method", default=None,
        choices=("rand", "maxdeg", "simsize", "simtop", "simdec"),
        help="decomposition method (default: engine default simdec)",
    )
    trace.add_argument("--fast", action="store_true",
                       help="use the fast scoring-measure subset")
    trace.add_argument("--config", default=None,
                       help="path to a saved scoring config (JSON)")
    trace.add_argument("--directed", action="store_true",
                       help="enforce query-edge orientation (d=1 only)")
    trace.add_argument("--use-index", default="auto",
                       choices=("auto", "on", "off"),
                       help="route candidate generation through the "
                            "upper-bound-pruned graph index (default: auto)")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="write the span stream as JSONL to PATH")
    trace.add_argument("--no-timing", action="store_true",
                       help="omit wall/CPU fields from --jsonl output "
                            "(byte-deterministic traces)")
    trace.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metric/span snapshot as JSON to PATH")
    trace.add_argument("--mmap", action="store_true",
                       help="open the graph zero-copy (requires an RKGS2 "
                            "store; see 'compact')")

    batch = sub.add_parser(
        "batch", help="run a saved workload (parallel / cached)"
    )
    batch.add_argument("graph", help="path to a saved graph")
    batch.add_argument("workload", help="workload file (see 'workload')")
    batch.add_argument("-k", type=int, default=5)
    batch.add_argument("-d", type=int, default=1, help="path bound")
    batch.add_argument("--alpha", type=float, default=None,
                       help="alpha-scheme split (default: engine default "
                            "0.5; explicit values are pinned against "
                            "planner tuning)")
    batch.add_argument(
        "--method", default=None,
        choices=("rand", "maxdeg", "simsize", "simtop", "simdec"),
        help="decomposition method (default: engine default simdec; "
             "explicit values are pinned against planner tuning)",
    )
    batch.add_argument("--algorithm", default="auto",
                       choices=("auto", "stark", "stard", "hybrid"),
                       help="star procedure (default: auto)")
    batch.add_argument("--plan", default="static",
                       choices=("static", "auto", "learned"),
                       help="per-query knob planning (per worker; "
                            "top-k scores are identical in every mode)")
    batch.add_argument("--plan-model", default=None, metavar="PATH",
                       help="fitted cost-model JSON for --plan; also "
                            "upgrades pool dispatch ordering from the "
                            "posting-mass heuristic to learned costs")
    batch.add_argument("--fast", action="store_true",
                       help="use the fast scoring-measure subset")
    batch.add_argument("--config", default=None,
                       help="path to a saved scoring config (JSON)")
    batch.add_argument("--workers", type=int, default=1,
                       help="parallel query execution (fork-based pool)")
    batch.add_argument("--backend", default="auto",
                       choices=("auto", "fork", "thread", "serial"),
                       help="parallel backend (default: auto)")
    batch.add_argument("--cache", action="store_true",
                       help="enable the cross-query candidate cache")
    batch.add_argument("--use-index", default="auto",
                       choices=("auto", "on", "off"),
                       help="route candidate generation through the "
                            "upper-bound-pruned graph index (per worker; "
                            "default: auto)")
    batch.add_argument("--semantic", default="auto",
                       choices=("auto", "on", "off"), dest="use_semantic",
                       help="augment under-filled token shortlists with "
                            "ANN-sourced, exactly-reranked candidates "
                            "(per worker; default: auto)")
    batch.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard each star query across N graph "
                            "partitions instead of parallelizing across "
                            "queries (excludes --workers > 1)")
    batch.add_argument("--partition", default="hash",
                       choices=("hash", "pivot-type"),
                       help="shard partition strategy (default: hash)")
    batch.add_argument("--timeout-ms", type=float, default=None,
                       help="per-query wall-clock deadline")
    batch.add_argument("--budget-nodes", type=int, default=None,
                       help="per-query cap on candidate nodes visited")
    batch.add_argument("--anytime", action="store_true",
                       help="on budget trip, return flagged best-so-far "
                            "results instead of failing")
    batch.add_argument("--show", type=int, default=0, metavar="N",
                       help="print the top-N matches of each query")
    batch.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="run with observability on and write the "
                            "merged metric snapshot as JSON to PATH")
    batch.add_argument("--no-timing", action="store_true",
                       help="omit wall-clock fields from --metrics-out "
                            "(byte-deterministic for a fixed workload)")
    batch.add_argument("--mmap", action="store_true",
                       help="open the graph zero-copy (requires an RKGS2 "
                            "store; see 'compact'); every worker attaches "
                            "the store's index columns")

    workload = sub.add_parser("workload", help="generate a query workload")
    workload.add_argument("graph", help="path to a saved graph")
    workload.add_argument("output", help="workload file to write")
    workload.add_argument("--count", type=int, default=20)
    workload.add_argument("--seed", type=int, default=23)
    workload.add_argument(
        "--shape", default=None,
        help="complex queries of shape N,E (default: star templates)",
    )

    plan_fit = sub.add_parser(
        "plan-fit",
        help="fit the learned planner's cost model from an experience "
             "JSONL (see 'search --experience-out') and write it as "
             "JSON, e.g. alongside a graph snapshot",
    )
    plan_fit.add_argument("experience", help="experience JSONL file")
    plan_fit.add_argument("output", help="cost-model JSON to write")
    plan_fit.add_argument("--ridge", type=float, default=1.0,
                          help="ridge regularization strength")
    plan_fit.add_argument("--min-samples", type=int, default=8,
                          help="observations per arm below which the "
                               "planner falls back to the static plan")

    learn = sub.add_parser("learn", help="train scoring weights")
    learn.add_argument("graph", help="path to a saved graph")
    learn.add_argument("output", help="scoring-config JSON to write")
    learn.add_argument("--pairs", type=int, default=400)
    learn.add_argument("--seed", type=int, default=17)

    demo = sub.add_parser("demo", help="end-to-end demonstration")
    demo.add_argument("--scale", type=float, default=0.3)

    snapshot = sub.add_parser(
        "snapshot",
        help="write a graph as a binary snapshot (preserves ids, "
             "tombstones, indexes, version and the delta journal)",
    )
    snapshot.add_argument("graph", help="path to a saved graph "
                                        "(line-JSON or snapshot)")
    snapshot.add_argument("output", help="snapshot file to write")

    apply_delta = sub.add_parser(
        "apply-delta",
        help="replay a JSONL mutation stream onto a graph and save a "
             "snapshot of the result",
    )
    apply_delta.add_argument("graph", help="path to a saved graph "
                                           "(line-JSON or snapshot)")
    apply_delta.add_argument("delta", help="JSONL operation file "
                                           "(see repro.dynamic.ops)")
    apply_delta.add_argument("output", help="snapshot file to write")

    compact = sub.add_parser(
        "compact",
        help="write a graph as an mmap-able RKGS2 store (columnar, "
             "page-aligned, CRC-guarded; opens zero-copy via --mmap)",
    )
    compact.add_argument("graph", help="path to a saved graph (line-JSON, "
                                       "snapshot, or an RKGS2 store whose "
                                       "mutation overlay gets folded in)")
    compact.add_argument("output", help="RKGS2 store file to write")
    compact.add_argument("--verify", action="store_true",
                         help="re-open the written store and CRC-check "
                              "every section")

    serve = sub.add_parser(
        "serve",
        help="run the async query service over a saved graph",
    )
    serve.add_argument("graph", help="path to a saved graph "
                                     "(line-JSON or snapshot)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8571)
    serve.add_argument("--workers", type=int, default=2,
                       help="pool size (= serving concurrency)")
    serve.add_argument("--backend", default="auto",
                       choices=("auto", "fork", "thread"),
                       help="worker pool backend (default: auto)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admitted-but-waiting requests at which "
                            "pressure reads 1.0")
    serve.add_argument("--tenant-rate", type=float, default=None,
                       help="per-tenant sustained requests/s "
                            "(default: unlimited)")
    serve.add_argument("--tenant-slots", type=int, default=None,
                       help="per-tenant outstanding-request cap "
                            "(default: unlimited)")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive faults that open a tenant's "
                            "circuit breaker")
    serve.add_argument("--breaker-cooldown", type=float, default=1.0,
                       metavar="SECONDS",
                       help="open-breaker cooldown before half-open probes")
    serve.add_argument("--fast", action="store_true",
                       help="use the fast scoring-measure subset")
    serve.add_argument("--config", default=None,
                       help="path to a saved scoring config (JSON)")
    serve.add_argument("--semantic", default="auto",
                       choices=("auto", "on", "off"), dest="use_semantic",
                       help="augment under-filled token shortlists with "
                            "ANN-sourced, exactly-reranked candidates "
                            "(per pool worker; default: auto)")
    serve.add_argument("--mmap", action="store_true",
                       help="open the graph zero-copy (requires an RKGS2 "
                            "store; see 'compact'); every pool worker "
                            "attaches the store's index columns")

    client = sub.add_parser(
        "client", help="query a running service"
    )
    client.add_argument("query", nargs="?", default=None,
                        help="query in the edge-pattern language "
                             "(omit with --healthz/--statz)")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8571)
    client.add_argument("-k", type=int, default=5)
    client.add_argument("--tenant", default="default")
    client.add_argument("--priority", default="silver",
                        help="SLO class (gold / silver / bronze)")
    client.add_argument("--mode", default="anytime",
                        choices=("anytime", "exact"))
    client.add_argument("--timeout-ms", type=float, default=None,
                        help="per-request deadline override")
    client.add_argument("--healthz", action="store_true",
                        help="print the service health document and exit")
    client.add_argument("--statz", action="store_true",
                        help="print the service stats document and exit")
    return parser


def _load_graph(path: str, mmap: bool = False):
    """Load a graph in any supported format (store, snapshot, line-JSON).

    With ``mmap`` the file must be an RKGS2 store and is opened zero-copy.
    """
    if mmap:
        from repro.errors import DatasetError, SnapshotCorruptionError
        from repro.graph import KnowledgeGraph

        try:
            return KnowledgeGraph.open_mmap(path)
        except SnapshotCorruptionError:
            raise
        except DatasetError as exc:
            raise DatasetError(
                f"{exc} (--mmap needs an RKGS2 store; build one with "
                f"'repro compact')"
            ) from exc
    from repro.dynamic import load_any

    return load_any(path)


def _attach_mmap(scorer, graph, use_index: str,
                 use_semantic: str = "off") -> None:
    """Attach the store's index/ANN columns to ``scorer`` when eligible."""
    if use_index != "off":
        from repro.store import attach_mmap_index

        scorer.graph_index = attach_mmap_index(graph, graph, mode=use_index)
    if use_semantic != "off":
        from repro.store import attach_mmap_semantic

        scorer.semantic_tier = attach_mmap_semantic(
            graph, graph, mode=use_semantic)


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _GENERATORS[args.dataset](scale=args.scale, seed=args.seed)
    save_graph(graph, args.output)
    stats = summarize(graph)
    print(f"wrote {args.output}: |V|={stats.num_nodes} |E|={stats.num_edges} "
          f"types={stats.num_types} relations={stats.num_relations}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = summarize(_load_graph(args.graph))
    for field in ("name", "num_nodes", "num_edges", "num_types",
                  "num_relations", "max_degree"):
        print(f"{field:14s} {getattr(stats, field)}")
    print(f"{'avg_degree':14s} {stats.avg_degree:.2f}")
    print(f"{'est_size_mb':14s} {stats.est_size_mb:.1f}")
    return 0


def _scoring_config(args: argparse.Namespace) -> ScoringConfig:
    """The scoring config a search/trace/batch invocation asked for."""
    if args.config:
        from repro.similarity.config_io import load_config

        config = load_config(args.config)
        if args.fast:
            config = config.with_fast()
        return config
    return ScoringConfig(fast=args.fast)


def _strip_timing(metrics: Optional[dict]) -> Optional[dict]:
    """Drop the wall-clock histogram block from a registry snapshot.

    Counters and gauges are deterministic for a fixed graph/workload;
    the ``span.*.ms`` histograms are not.
    """
    if metrics is None:
        return None
    return {key: value for key, value in metrics.items()
            if key != "histograms"}


def _write_metrics(path: str, doc: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, sort_keys=True, indent=2)
        handle.write("\n")
    print(f"wrote {path}")


def _cmd_search(args: argparse.Namespace) -> int:
    if (args.query is None) == (args.keywords is None):
        print("error: give a query in the edge-pattern language, or "
              "--keywords (not both)", file=sys.stderr)
        return 2
    graph = _load_graph(args.graph, mmap=args.mmap)
    if args.keywords is not None:
        from repro.query.keywords import synthesize_query

        interp = synthesize_query(graph, args.keywords)
        query = interp.query
        print(interp.describe())
    else:
        query = parse_query(args.query.replace(";", "\n"), name="cli")
    config = _scoring_config(args)
    scorer = ScoringFunction(graph, config)
    if args.mmap:
        _attach_mmap(scorer, graph, args.use_index, args.use_semantic)
    planner = None
    if args.plan != "static":
        from repro.plan import QueryPlanner

        planner = QueryPlanner.for_engine(
            mode=args.plan, model_path=args.plan_model,
            experience_path=args.experience_out,
        )
    elif args.experience_out:
        print("warning: --experience-out needs --plan=auto or "
              "--plan=learned; ignoring it", file=sys.stderr)
    if args.shards is not None:
        from repro.shard import ShardedEngine

        engine = ShardedEngine(
            graph, scorer=scorer, shards=args.shards,
            partition=args.partition, d=args.d, alpha=args.alpha,
            decomposition_method=args.method, directed=args.directed,
            use_index=args.use_index, use_semantic=args.use_semantic,
            algorithm=args.algorithm, plan=args.plan, planner=planner,
        )
    else:
        engine = Star(
            graph, scorer=scorer, d=args.d, alpha=args.alpha,
            decomposition_method=args.method, directed=args.directed,
            use_index=args.use_index, use_semantic=args.use_semantic,
            algorithm=args.algorithm, plan=args.plan, planner=planner,
        )
    budget = None
    if args.timeout_ms is not None or args.budget_nodes is not None:
        from repro.runtime import Budget

        budget = Budget(
            deadline_ms=args.timeout_ms, max_nodes=args.budget_nodes,
            anytime=args.anytime,
        )
    observed = obs.capture() if args.metrics_out else nullcontext()
    try:
        with observed as tracer:
            start = time.perf_counter()
            matches = engine.search(query, args.k, budget=budget)
            elapsed = time.perf_counter() - start
    finally:
        if args.shards is not None:
            engine.close()
        if planner is not None and planner.store is not None:
            planner.store.close()
    if args.metrics_out:
        inner = getattr(engine, "engine", engine)
        decision = (getattr(engine, "last_plan", None)
                    or getattr(inner, "last_plan", None))
        doc = {
            "command": "search",
            "engine_stats": engine.last_stats,
            "shard_stats": getattr(engine, "last_shard_stats", None),
            "plan": decision.as_dict() if decision is not None else None,
            "metrics": tracer.registry.as_dict(),
            "spans": tracer.to_dicts(include_timing=not args.no_timing),
        }
        if args.no_timing:
            doc["metrics"] = _strip_timing(doc["metrics"])
        else:
            doc["elapsed_ms"] = round(elapsed * 1000.0, 3)
        _write_metrics(args.metrics_out, doc)
    report = engine.last_report
    if report is not None and report.degraded:
        print(f"warning: incomplete results ({report.summary()})",
              file=sys.stderr)
    print(f"{len(matches)} match(es) in {elapsed * 1000:.1f} ms")
    for rank, match in enumerate(matches, start=1):
        assigned = "  ".join(
            f"{qid}={graph.describe(v)}"
            for qid, v in sorted(match.assignment.items())
        )
        print(f"#{rank}  score={match.score:.3f}  {assigned}")
    if args.explain and matches:
        from repro.similarity.explain import explain_match

        print()
        print(explain_match(scorer, query, matches[0]))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, mmap=args.mmap)
    query = parse_query(args.query.replace(";", "\n"), name="cli")
    config = _scoring_config(args)
    scorer = ScoringFunction(graph, config)
    if args.mmap:
        _attach_mmap(scorer, graph, args.use_index)
    engine = Star(
        graph, scorer=scorer, d=args.d, alpha=args.alpha,
        decomposition_method=args.method, directed=args.directed,
        use_index=args.use_index,
    )
    with obs.capture() as tracer:
        start = time.perf_counter()
        matches = engine.search(query, args.k)
        elapsed = time.perf_counter() - start
    print(f"{len(matches)} match(es) in {elapsed * 1000:.1f} ms")
    print()
    print(tracer.format_tree())
    print()
    for line in tracer.registry.summary_lines():
        print(line)
    stats = engine.last_engine_stats
    if stats is not None:
        print()
        print(stats.summary())
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(tracer.export_jsonl(include_timing=not args.no_timing))
        print(f"wrote {args.jsonl}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, {
            "command": "trace",
            "elapsed_ms": round(elapsed * 1000.0, 3),
            "engine_stats": engine.last_stats,
            "metrics": tracer.registry.as_dict(),
            "spans": tracer.to_dicts(),
        })
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.perf import search_many
    from repro.query import load_workload

    graph = _load_graph(args.graph, mmap=args.mmap)
    queries = load_workload(args.workload)
    config = _scoring_config(args)
    budget_spec = None
    if args.timeout_ms is not None or args.budget_nodes is not None:
        budget_spec = {
            "deadline_ms": args.timeout_ms,
            "max_nodes": args.budget_nodes,
            "anytime": args.anytime,
        }
    observed = obs.capture() if args.metrics_out else nullcontext()
    with observed:
        result = search_many(
            graph, queries, args.k, workers=args.workers, config=config,
            cache=args.cache, budget_spec=budget_spec, backend=args.backend,
            shards=args.shards, partition=args.partition,
            d=args.d, alpha=args.alpha, decomposition_method=args.method,
            use_index=args.use_index, use_semantic=args.use_semantic,
            algorithm=args.algorithm, plan=args.plan,
            plan_model=args.plan_model,
            mmap_store=graph.store_path if args.mmap else None,
        )
    if args.metrics_out:
        doc = {
            "command": "batch",
            "backend": result.backend,
            "workers": result.workers,
            "queries": len(result.outcomes),
            "engine_stats": result.stats,
            "metrics": result.metrics,
            "cache": (result.cache_stats.as_dict()
                      if result.cache_stats is not None else None),
        }
        if args.no_timing:
            doc["metrics"] = _strip_timing(doc["metrics"])
        else:
            doc["wall_s"] = round(result.wall_s, 6)
        _write_metrics(args.metrics_out, doc)
    print(result.summary())
    if result.degraded:
        print(f"warning: {result.degraded} quer(ies) returned incomplete "
              "results (budget trips)", file=sys.stderr)
    for outcome in result.outcomes:
        flag = ""
        if outcome.report is not None and outcome.report.degraded:
            flag = "  [degraded]"
        print(f"query {outcome.index}: {len(outcome.matches)} match(es) "
              f"in {outcome.elapsed_s * 1000:.1f} ms{flag}")
        for rank, match in enumerate(outcome.matches[: args.show], start=1):
            assigned = "  ".join(
                f"{qid}={graph.describe(v)}"
                for qid, v in sorted(match.assignment.items())
            )
            print(f"  #{rank}  score={match.score:.3f}  {assigned}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    graph = dbpedia_like(scale=args.scale)
    print(f"generated {graph}")
    query = parse_query(
        "(?m:director) -[collaborated_with]- (Brad:actor)\n"
        "(?m) -[won]- (?:award)",
        name="demo",
    )
    engine = Star(graph, d=2)
    matches = engine.search(query, 3)
    if not matches:
        print("no matches; try a larger --scale")
        return 1
    for rank, match in enumerate(matches, start=1):
        assigned = "  ".join(
            f"{qid}={graph.describe(v)}"
            for qid, v in sorted(match.assignment.items())
        )
        print(f"#{rank}  score={match.score:.3f}  {assigned}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.query import complex_workload, save_workload, star_workload

    graph = _load_graph(args.graph)
    if args.shape:
        try:
            n, e = (int(part) for part in args.shape.split(","))
        except ValueError:
            print(f"error: --shape expects N,E, got {args.shape!r}",
                  file=sys.stderr)
            return 2
        queries = complex_workload(graph, args.count, shape=(n, e),
                                   seed=args.seed)
    else:
        queries = star_workload(graph, args.count, seed=args.seed)
    save_workload(queries, args.output)
    print(f"wrote {args.output}: {len(queries)} queries")
    return 0


def _cmd_plan_fit(args: argparse.Namespace) -> int:
    from repro.plan import CostModel, ExperienceStore

    store = ExperienceStore.load(args.experience)
    model = CostModel(ridge=args.ridge, min_samples=args.min_samples)
    consumed = model.fit_store(store)
    model.save(args.output)
    print(f"wrote {args.output}: {consumed} record(s)")
    classes = sorted({record.class_key for record in store})
    for class_key in classes:
        for arm in model.arms_for(class_key):
            n = model.samples(class_key, arm)
            warm = "warm" if n >= model.min_samples else "cold"
            print(f"  {class_key:10s} {arm:32s} {n:5d} sample(s)  [{warm}]")
    return 0


def _cmd_learn(args: argparse.Namespace) -> int:
    from repro.similarity import evaluate_weights, learn_weights
    from repro.similarity.config_io import save_config

    graph = _load_graph(args.graph)
    weights = learn_weights(graph, num_pairs=args.pairs, seed=args.seed)
    accuracy = evaluate_weights(graph, weights, num_pairs=max(100, args.pairs // 2))
    save_config(ScoringConfig(node_weights=weights), args.output)
    print(f"wrote {args.output}: holdout accuracy {accuracy:.2%}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    graph.save(args.output)
    print(f"wrote {args.output}: |V|={graph.num_nodes} "
          f"|E|={graph.num_edges} version={graph.version} "
          f"journal={len(graph.journal)} entr(ies)"
          f"{' (has tombstones)' if graph.has_tombstones else ''}")
    return 0


def _cmd_apply_delta(args: argparse.Namespace) -> int:
    from repro.dynamic import apply_operations, load_operations

    graph = _load_graph(args.graph)
    before = graph.version
    records = load_operations(args.delta)
    applied = apply_operations(graph, records)
    graph.save(args.output)
    print(f"applied {applied} operation(s) "
          f"(version {before} -> {graph.version})")
    print(f"wrote {args.output}: |V|={graph.num_nodes} "
          f"|E|={graph.num_edges} journal={len(graph.journal)} entr(ies)")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.store import StoreReader, write_store

    graph = _load_graph(args.graph)
    nbytes = write_store(graph, args.output)
    print(f"wrote {args.output}: {nbytes} bytes |V|={graph.num_nodes} "
          f"|E|={graph.num_edges} version={graph.version}")
    if args.verify:
        reader = StoreReader(args.output, verify=True)
        sections = len(reader.entries)
        reader.close()
        print(f"verified {sections} section(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeApp
    from repro.serve.server import serve_forever

    graph = _load_graph(args.graph, mmap=args.mmap)
    config = _scoring_config(args)
    engine_opts = {"use_semantic": args.use_semantic}
    if args.mmap:
        engine_opts["mmap_store"] = graph.store_path
    app = ServeApp(
        graph,
        config=config,
        engine_opts=engine_opts,
        workers=args.workers,
        backend=args.backend,
        max_queue_depth=args.queue_depth,
        tenant_rate=args.tenant_rate,
        tenant_slots=args.tenant_slots,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
    )

    def _announce(bound) -> None:
        print(f"serving {args.graph} on http://{bound[0]}:{bound[1]} "
              f"({args.workers} worker(s), backend {app.pool.backend})")

    try:
        asyncio.run(serve_forever(app, host=args.host, port=args.port,
                                  ready=_announce))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.serve import QueryRequest, ServeClient

    with ServeClient(args.host, args.port) as client:
        if args.healthz:
            print(json.dumps(client.healthz(), sort_keys=True, indent=2))
            return 0
        if args.statz:
            print(json.dumps(client.statz(), sort_keys=True, indent=2))
            return 0
        if not args.query:
            print("error: give a query, or --healthz / --statz",
                  file=sys.stderr)
            return 2
        request = QueryRequest(
            query=args.query.replace(";", "\n"),
            k=args.k,
            tenant=args.tenant,
            priority=args.priority,
            mode=args.mode,
            timeout_ms=args.timeout_ms,
        )
        response = client.search(request)
    print(json.dumps(response.as_dict(), sort_keys=True, indent=2))
    return 0 if response.answered else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "search": _cmd_search,
        "trace": _cmd_trace,
        "batch": _cmd_batch,
        "workload": _cmd_workload,
        "plan-fit": _cmd_plan_fit,
        "learn": _cmd_learn,
        "demo": _cmd_demo,
        "snapshot": _cmd_snapshot,
        "apply-delta": _cmd_apply_delta,
        "compact": _cmd_compact,
        "serve": _cmd_serve,
        "client": _cmd_client,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
