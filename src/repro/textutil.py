"""Shared text utilities (tokenization) used by graph and similarity layers."""

from __future__ import annotations

import re
from typing import List

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Split *text* into lowercase alphanumeric tokens.

    The single tokenizer shared by the graph inverted index, the query
    parser and the similarity functions, so all layers agree on token
    boundaries.

    >>> tokenize("Brad Pitt (actor)")
    ['brad', 'pitt', 'actor']
    """
    return [t.lower() for t in _TOKEN_RE.findall(text)]
