"""Shared text utilities (tokenization) used by graph and similarity layers."""

from __future__ import annotations

import re
from functools import lru_cache
from typing import List, Tuple

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


@lru_cache(maxsize=65536)
def tokenize_tuple(text: str) -> Tuple[str, ...]:
    """Tokenize *text* into an immutable, memoized token tuple.

    Graph construction and descriptor building tokenize the same names,
    types and keywords repeatedly (``add_node`` indexes them, the
    ``DescriptorCache`` re-derives them); the LRU memo makes the second
    and later tokenizations of a string free.  The tuple is shared, so
    callers must not rely on getting a private copy -- use
    :func:`tokenize` for a mutable list.

    >>> tokenize_tuple("Brad Pitt (actor)")
    ('brad', 'pitt', 'actor')
    """
    return tuple(t.lower() for t in _TOKEN_RE.findall(text))


def tokenize(text: str) -> List[str]:
    """Split *text* into lowercase alphanumeric tokens.

    The single tokenizer shared by the graph inverted index, the query
    parser and the similarity functions, so all layers agree on token
    boundaries.

    >>> tokenize("Brad Pitt (actor)")
    ['brad', 'pitt', 'actor']
    """
    return list(tokenize_tuple(text))
