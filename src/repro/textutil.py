"""Shared text utilities (tokenization) used by graph and similarity layers."""

from __future__ import annotations

import os
import re
from functools import lru_cache
from typing import List, Optional, Tuple

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")

#: Default token-memo capacity; override per process with the
#: ``REPRO_TOKEN_MEMO_SIZE`` environment variable (``0`` disables the
#: bound entirely -- only sensible for short-lived batch jobs) or at
#: runtime with :func:`configure_token_memo`.
DEFAULT_TOKEN_MEMO_SIZE = 65536


def _tokenize_impl(text: str) -> Tuple[str, ...]:
    return tuple(t.lower() for t in _TOKEN_RE.findall(text))


def _env_memo_size() -> int:
    raw = os.environ.get("REPRO_TOKEN_MEMO_SIZE", "")
    if not raw:
        return DEFAULT_TOKEN_MEMO_SIZE
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_TOKEN_MEMO_SIZE


def _build_memo(maxsize: Optional[int]):
    return lru_cache(maxsize=maxsize)(_tokenize_impl)


_memo = _build_memo(_env_memo_size() or None)


def tokenize_tuple(text: str) -> Tuple[str, ...]:
    """Tokenize *text* into an immutable, memoized token tuple.

    Graph construction and descriptor building tokenize the same names,
    types and keywords repeatedly (``add_node`` indexes them, the
    ``DescriptorCache`` re-derives them); the LRU memo makes the second
    and later tokenizations of a string free.  The tuple is shared, so
    callers must not rely on getting a private copy -- use
    :func:`tokenize` for a mutable list.

    The memo is process-wide state sized relative to the working graph's
    vocabulary: long-lived servers should call :func:`clear_token_memo`
    when swapping graphs (snapshot loading does this automatically) and
    may resize it with :func:`configure_token_memo` /
    ``REPRO_TOKEN_MEMO_SIZE``.

    >>> tokenize_tuple("Brad Pitt (actor)")
    ('brad', 'pitt', 'actor')
    """
    return _memo(text)


def tokenize(text: str) -> List[str]:
    """Split *text* into lowercase alphanumeric tokens.

    The single tokenizer shared by the graph inverted index, the query
    parser and the similarity functions, so all layers agree on token
    boundaries.

    >>> tokenize("Brad Pitt (actor)")
    ['brad', 'pitt', 'actor']
    """
    return list(tokenize_tuple(text))


def clear_token_memo() -> None:
    """Drop every memoized tokenization.

    Call on graph-swap boundaries (a fresh graph means a fresh
    vocabulary; entries for the old one are dead weight that the LRU
    bound would only evict slowly).  :func:`repro.dynamic.load_snapshot`
    calls this for you.
    """
    _memo.cache_clear()


def configure_token_memo(maxsize: Optional[int]) -> None:
    """Resize the token memo (clears it as a side effect).

    Args:
        maxsize: new capacity; ``None`` or ``0`` removes the bound.
    """
    global _memo
    if maxsize is not None and maxsize < 0:
        raise ValueError(f"token memo size must be >= 0, got {maxsize}")
    _memo = _build_memo(maxsize or None)


def token_memo_info():
    """``functools``-style cache statistics for the token memo."""
    return _memo.cache_info()
