"""Candidate-index benchmarks: upper-bound-pruned generation speedup.

Assertion-level checks for the ``repro.index`` subsystem:

1. **Pruned-generation speedup**: running a template workload's
   candidate generation through the :class:`~repro.index.GraphIndex`
   (WAND-style bound-ordered evaluation with an early cutoff) must be at
   least ``MIN_INDEX_SPEEDUP`` times faster than the seed's linear
   shortlist scan, with *byte-identical* scored candidate lists.  Both
   sides run on cold scorers, so the comparison is pure
   evaluation-strategy: the index wins exactly by the candidates its
   bounds prove it never needs to score.
2. **Scan-ratio gate**: the posting entries touched per candidate call,
   as a fraction of the graph's node count, must stay below
   ``MAX_SCAN_RATIO`` -- the compact postings walk must not degenerate
   into a full-graph sweep.
3. **End-to-end parity**: full ``Star`` searches with ``use_index`` on
   vs off return identical (assignment, score) lists.

Smoke mode (CI)::

    python benchmarks/bench_candidate_index.py --smoke

runs a reduced load and exits non-zero if the speedup falls below
``MIN_INDEX_SPEEDUP``, the scan ratio exceeds ``MAX_SCAN_RATIO``, or the
indexed path changes any result.
"""

import argparse
import hashlib
import sys
import time

from repro.core.candidates import node_candidates
from repro.core.framework import Star
from repro.eval import benchmark_graph, format_ms, print_table
from repro.index import attach_index
from repro.query import star_workload
from repro.similarity.scoring import ScoringFunction

K = 10
NUM_QUERIES = 30
#: Candidate cutoff for the generation benchmark (the regime ``auto``
#: targets; Section V-A's "retain a few candidate nodes").
CANDIDATE_LIMIT = 10
#: The CI gate: indexed candidate generation must beat the linear scan
#: by at least this factor on cold scorers.
MIN_INDEX_SPEEDUP = 2.0
#: The CI gate: posting entries scanned per call / graph nodes.
MAX_SCAN_RATIO = 0.5


def _query_nodes(workload):
    nodes = []
    for query in workload:
        qs = query.nodes
        nodes.extend(qs.values() if isinstance(qs, dict) else qs)
    return nodes


def result_digest(lists) -> str:
    """Order-sensitive digest of every scored candidate list."""
    payload = repr(lists).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def run_generation_speedup(num_queries: int = NUM_QUERIES):
    """Cold linear vs cold indexed candidate generation + parity."""
    graph = benchmark_graph("dbpedia")
    workload = star_workload(graph, num_queries, seed=171)
    qnodes = _query_nodes(workload)

    linear = ScoringFunction(graph)
    start = time.perf_counter()
    linear_lists = [
        node_candidates(linear, qn, limit=CANDIDATE_LIMIT) for qn in qnodes
    ]
    linear_s = time.perf_counter() - start

    indexed = ScoringFunction(graph)
    index = attach_index(indexed, mode="on")
    start = time.perf_counter()
    indexed_lists = [
        node_candidates(indexed, qn, limit=CANDIDATE_LIMIT) for qn in qnodes
    ]
    indexed_s = time.perf_counter() - start

    identical = linear_lists == indexed_lists
    speedup = linear_s / indexed_s if indexed_s > 0 else float("inf")
    calls = max(1, len(qnodes))
    scan_ratio = index.postings_scanned / (calls * max(1, graph.num_nodes))
    considered = index.evaluated + index.pruned
    pruned_frac = index.pruned / considered if considered else 0.0
    rows = [
        ["linear scan (seed path)",
         format_ms(linear_s / calls, is_seconds=True), "",
         result_digest(linear_lists)],
        ["indexed (bound-pruned)",
         format_ms(indexed_s / calls, is_seconds=True),
         f"{pruned_frac:.0%} pruned", result_digest(indexed_lists)],
        ["speedup", f"{speedup:.1f}x", f"gate >= {MIN_INDEX_SPEEDUP}x", ""],
        ["scan ratio", f"{scan_ratio:.3f}",
         f"gate < {MAX_SCAN_RATIO} (postings/node/call)", ""],
    ]
    return rows, speedup, scan_ratio, identical


def run_search_parity(num_queries: int = NUM_QUERIES):
    """Full Star searches, use_index on vs off, identical results."""
    graph = benchmark_graph("dbpedia")
    workload = star_workload(graph, num_queries, seed=191)

    def serve(mode: str):
        engine = Star(graph, use_index=mode, candidate_limit=CANDIDATE_LIMIT)
        start = time.perf_counter()
        results = [
            [(m.key(), m.score) for m in engine.search(q, K)]
            for q in workload
        ]
        return time.perf_counter() - start, results

    off_s, off_results = serve("off")
    on_s, on_results = serve("on")
    identical = off_results == on_results
    rows = [
        ["use_index=off", format_ms(off_s / num_queries, is_seconds=True),
         result_digest(off_results)],
        ["use_index=on", format_ms(on_s / num_queries, is_seconds=True),
         result_digest(on_results)],
    ]
    return rows, identical


def test_candidate_index_speedup(benchmark):
    rows, speedup, scan_ratio, identical = benchmark.pedantic(
        run_generation_speedup, rounds=1, iterations=1
    )
    assert identical, "indexed path changed a candidate list"
    assert speedup >= MIN_INDEX_SPEEDUP, f"index speedup {speedup:.2f}x"
    assert scan_ratio < MAX_SCAN_RATIO, f"scan ratio {scan_ratio:.3f}"
    print_table(
        "Upper-bound-pruned candidate generation -- dbpedia template "
        f"workload ({NUM_QUERIES} queries, limit={CANDIDATE_LIMIT})",
        ["variant", "avg / call", "detail", "digest"],
        rows,
        save_as="candidate_index",
    )


def test_candidate_index_search_parity(benchmark):
    rows, identical = benchmark.pedantic(
        run_search_parity, rounds=1, iterations=1
    )
    assert identical, "use_index=on changed a search result"
    print_table(
        f"Indexed search parity ({NUM_QUERIES} queries, k={K})",
        ["variant", "avg / query", "digest"],
        rows,
        save_as="candidate_index_parity",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced load; exit non-zero on gate failure")
    parser.add_argument("--queries", type=int, default=None)
    args = parser.parse_args(argv)
    num_queries = args.queries or (10 if args.smoke else NUM_QUERIES)

    rows, speedup, scan_ratio, identical = run_generation_speedup(num_queries)
    print_table(
        f"Upper-bound-pruned candidate generation ({num_queries} queries, "
        f"limit={CANDIDATE_LIMIT})",
        ["variant", "avg / call", "detail", "digest"],
        rows,
        save_as=None if args.smoke else "candidate_index",
    )
    failures = []
    if not identical:
        failures.append("indexed path changed a candidate list")
    if speedup < MIN_INDEX_SPEEDUP:
        failures.append(
            f"index speedup {speedup:.2f}x < {MIN_INDEX_SPEEDUP}x"
        )
    if scan_ratio >= MAX_SCAN_RATIO:
        failures.append(
            f"scan ratio {scan_ratio:.3f} >= {MAX_SCAN_RATIO}"
        )

    parity_rows, parity = run_search_parity(num_queries)
    print_table(
        f"Indexed search parity ({num_queries} queries, k={K})",
        ["variant", "avg / query", "digest"],
        parity_rows,
        save_as=None if args.smoke else "candidate_index_parity",
    )
    if not parity:
        failures.append("use_index=on changed a search result")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("index smoke OK" if args.smoke else "index benchmark OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
