"""Figure 15 (Exp-5): scalability over Freebase G1..G4.

Paper setup: G1(10M nodes, 51M edges) extracted from Freebase, expanded
in a BFS manner to G2(20M, 91M), G3(30M, 130M), G4(40M, 180M); 1,000
random queries, k=20, d=2.

* (a) star search: all algorithms slow down as the graph grows; stark and
  stard stay at least an order of magnitude faster than graphTA/BP, and
  stard improves stark by 35-45%.
* (b) starjoin: with the alpha-scheme, SimSize/SimTop/SimDec are 20-44%
  faster than Rand/MaxDeg across sizes.

Scaled setup: the same nested-BFS-expansion protocol over the
freebase-like universe, with edge counts in the paper's 51:91:130:180
proportion.

* (c) sharded execution: the same star workload run through
  :class:`repro.shard.ShardedEngine` at growing shard counts.  Sharded
  results must match the single-process engine exactly (tie-tolerant
  score/key comparison); on a multi-core host the fork backend should
  approach linear speedup since per-shard pivot work is 1/S of the total.

``python benchmarks/bench_fig15_scalability.py --smoke`` runs the CI
shard gate: parity is enforced unconditionally; the >= 1.5x speedup gate
at 4 shards is enforced only when the host grants >= 4 cores (a
single-core container cannot beat 1x -- the same rule
``bench_perf_cache.py`` applies to its parallel gate) and the fork start
method is available.  Machine-readable results land in
``benchmarks/results/fig15_shard_scaling.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core import Star
from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_series,
    run_general_workload,
    run_star_workload,
)
from repro.graph.sampling import scalability_series
from repro.perf import fork_available
from repro.query import complex_workload, star_workload
from repro.shard import ShardedEngine
from repro.similarity import ScoringConfig, ScoringFunction

ALGORITHMS = ("stark", "stard", "graphta", "bp")
JOIN_METHODS = ("rand", "maxdeg", "simsize", "simtop", "simdec")
K = 20
D = 2
NUM_QUERIES = 8
#: Paper edge counts 51M/91M/130M/180M, scaled 1:10000.
SIZES = (5100, 9100, 13000, 18000)
SHARD_COUNTS = (1, 2, 4, 8)
SMOKE_SHARD_COUNTS = (1, 2, 4)
SPEEDUP_GATE = 1.5
SPEEDUP_GATE_SHARDS = 4
RESULTS = Path(__file__).parent / "results" / "fig15_shard_scaling.json"

_series_cache = {}


def graph_series():
    if "series" not in _series_cache:
        universe = benchmark_graph("freebase", scale=1.3)
        _series_cache["series"] = scalability_series(
            universe, list(SIZES), seed=151
        )
    return _series_cache["series"]


def run_star_experiment():
    table = {}
    labels = []
    for i, graph in enumerate(graph_series(), start=1):
        labels.append(f"G{i}({graph.num_nodes},{graph.num_edges})")
        scorer = ScoringFunction(graph, ScoringConfig(fast=True))
        workload = star_workload(graph, NUM_QUERIES, seed=152)
        results = run_star_workload(scorer, workload, ALGORITHMS, K, d=D)
        for name, result in results.items():
            table.setdefault(name, []).append(result.avg_ms)
    return table, labels


def run_join_experiment():
    table = {}
    labels = []
    for i, graph in enumerate(graph_series(), start=1):
        labels.append(f"G{i}")
        scorer = ScoringFunction(graph, ScoringConfig(fast=True))
        workload = complex_workload(graph, 5, shape=(4, 4), seed=153)
        for method in JOIN_METHODS:
            result = run_general_workload(
                scorer, workload, k=K, d=1, alpha=0.5, method=method
            )
            table.setdefault(method, []).append(result.avg_ms)
    return table, labels


# ----------------------------------------------------------------------
# (c) sharded execution
# ----------------------------------------------------------------------
def _match_keys(matches):
    """Tie-tolerant identity of a top-k list: sorted (score, key) pairs."""
    return sorted((round(m.score, 12), m.key()) for m in matches)


def _timed_pass(search, workload):
    start = time.perf_counter()
    for query in workload:
        search(query, K)
    return (time.perf_counter() - start) * 1000.0 / len(workload)


def run_shard_experiment(graph, shard_counts, strategies=("hash",),
                         backend="auto", num_queries=NUM_QUERIES,
                         collect_counters=True):
    """Baseline vs sharded timings + parity on the fig15 star workload.

    Returns a JSON-safe dict: baseline avg ms/query, then one record per
    (strategy, shard count) with avg ms, speedup, parity verdict and the
    partition's replication factor.  The first full pass over the
    workload warms each engine (partition + shm export + worker spawn for
    the fork backend) and yields the reference/parity results; the second
    pass is the timed one, so setup cost is excluded exactly as engine
    reuse excludes it in a real deployment.
    """
    scorer = ScoringFunction(graph, ScoringConfig(fast=True))
    workload = star_workload(graph, num_queries, seed=152)

    baseline = Star(graph, scorer=scorer, d=D)
    reference = [_match_keys(baseline.search(q, K)) for q in workload]
    baseline_ms = _timed_pass(baseline.search, workload)

    runs = []
    counters = {}
    for strategy in strategies:
        for shards in shard_counts:
            engine = ShardedEngine(
                graph, scorer=scorer, shards=shards, partition=strategy,
                backend=backend, d=D,
            )
            try:
                gate_run = (collect_counters
                            and shards == max(shard_counts)
                            and strategy == strategies[0])
                if gate_run:
                    with obs.capture() as tracer:
                        got = [_match_keys(engine.search(q, K))
                               for q in workload]
                    snap = tracer.registry.as_dict()
                    counters = {name: value for name, value
                                in snap["counters"].items()
                                if name.startswith("shard.")}
                else:
                    got = [_match_keys(engine.search(q, K))
                           for q in workload]
                avg_ms = _timed_pass(engine.search, workload)
                runs.append({
                    "shards": shards,
                    "strategy": strategy,
                    "backend": engine.backend,
                    "avg_ms": round(avg_ms, 3),
                    "speedup": round(baseline_ms / max(avg_ms, 1e-9), 3),
                    "parity": got == reference,
                    "replication_factor": round(
                        engine.partition.replication_factor, 3),
                })
            finally:
                engine.close()

    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "num_queries": len(workload),
        "baseline_avg_ms": round(baseline_ms, 3),
        "runs": runs,
        "shard_counters": counters,
    }


def test_fig15c_shard_scaling(benchmark):
    graph = graph_series()[0]
    result = benchmark.pedantic(
        run_shard_experiment,
        args=(graph, SMOKE_SHARD_COUNTS),
        kwargs={"strategies": ("hash", "pivot-type"), "backend": "serial",
                "collect_counters": False},
        rounds=1, iterations=1,
    )
    labels = [f"{r['strategy']}/{r['shards']}" for r in result["runs"]]
    print_series(
        f"Figure 15(c) -- sharded star search on freebase-like G1 "
        f"(k={K}, d={D}, serial backend, avg ms/query; "
        f"baseline {format_ms(result['baseline_avg_ms'])})",
        "partition/shards",
        labels,
        [("avg ms", [format_ms(r["avg_ms"]) for r in result["runs"]]),
         ("parity", [str(r["parity"]) for r in result["runs"]])],
        save_as="fig15c_scalability_shard",
    )
    # Sharded execution is exact at every shard count and strategy.
    assert all(r["parity"] for r in result["runs"])


def test_fig15a_star_scalability(benchmark):
    table, labels = benchmark.pedantic(
        run_star_experiment, rounds=1, iterations=1
    )
    print_series(
        f"Figure 15(a) -- star search scalability on freebase-like G1..G4 "
        f"(k={K}, d={D}, {NUM_QUERIES} queries/graph, avg ms/query)",
        "graph",
        labels,
        [(name, [format_ms(v) for v in values])
         for name, values in table.items()],
        save_as="fig15a_scalability_star",
    )
    stark, stard = table["stark"], table["stard"]
    graphta, bp = table["graphta"], table["bp"]
    # STAR beats both baselines on every graph size.
    for i in range(len(SIZES)):
        assert min(stark[i], stard[i]) < graphta[i]
        assert min(stark[i], stard[i]) < bp[i]
    # Baselines slow down markedly as the graph grows.
    assert graphta[-1] > graphta[0]
    assert bp[-1] > bp[0]


def test_fig15b_join_scalability(benchmark):
    table, labels = benchmark.pedantic(
        run_join_experiment, rounds=1, iterations=1
    )
    print_series(
        f"Figure 15(b) -- starjoin scalability on freebase-like G1..G4 "
        f"(k={K}, Q(4,4) x 5, avg ms/query)",
        "graph",
        labels,
        [(name, [format_ms(v) for v in values])
         for name, values in table.items()],
        save_as="fig15b_scalability_join",
    )
    totals = {m: sum(v) for m, v in table.items()}
    # The optimized decompositions are collectively no slower than the
    # baselines overall (the paper reports 20-44% faster).
    assert min(totals[m] for m in ("simsize", "simtop", "simdec")) <= \
        max(totals["rand"], totals["maxdeg"])


# ----------------------------------------------------------------------
# CLI: the shard-smoke CI gate + full shard-scaling sweep
# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: one small graph, shard counts "
                             f"{SMOKE_SHARD_COUNTS}, parity + speedup gates")
    parser.add_argument("--scale", type=float, default=0.6,
                        help="smoke graph scale (default 0.6)")
    args = parser.parse_args()

    cpu_count = os.cpu_count() or 1
    have_fork = fork_available()
    backend = "fork" if have_fork else "serial"
    results: dict = {
        "smoke": args.smoke,
        "cpu_count": cpu_count,
        "fork_available": have_fork,
        "k": K,
        "d": D,
        "speedup_gate": SPEEDUP_GATE,
        "speedup_gate_shards": SPEEDUP_GATE_SHARDS,
        "graphs": {},
    }
    failures: list = []

    if args.smoke:
        graph = benchmark_graph("freebase", scale=args.scale)
        shard_counts = SMOKE_SHARD_COUNTS
        graphs = {"smoke": graph}
        strategies = ("hash", "pivot-type")
    else:
        shard_counts = SHARD_COUNTS
        graphs = {f"G{i}": g for i, g in enumerate(graph_series(), start=1)}
        strategies = ("hash",)

    for label, graph in graphs.items():
        print(f"{label}: |V|={graph.num_nodes} |E|={graph.num_edges}, "
              f"{backend} backend, {cpu_count} core(s)")
        experiment = run_shard_experiment(
            graph, shard_counts, strategies=strategies, backend=backend)
        results["graphs"][label] = experiment
        print(f"  baseline: {experiment['baseline_avg_ms']:.1f} ms/query")
        for run in experiment["runs"]:
            print(f"  {run['strategy']:>10}/{run['shards']} shards "
                  f"({run['backend']}): {run['avg_ms']:>8.1f} ms/query, "
                  f"speedup {run['speedup']:.2f}x, "
                  f"parity={'OK' if run['parity'] else 'BROKEN'}, "
                  f"replication {run['replication_factor']:.2f}")
            # Gate 1 (unconditional): sharded == single-process results.
            if not run["parity"]:
                failures.append(
                    f"{label}: {run['strategy']}/{run['shards']} shards "
                    f"diverged from the single-process engine")

    # Gate 2: >= 1.5x at 4 shards -- only meaningful given >= 4 cores
    # and a fork backend; a single-core container cannot beat 1x.
    gate_runs = [run
                 for experiment in results["graphs"].values()
                 for run in experiment["runs"]
                 if run["shards"] == SPEEDUP_GATE_SHARDS
                 and run["backend"] == "fork"]
    if not have_fork:
        results["speedup_gate_status"] = "skipped: fork unavailable"
    elif cpu_count < SPEEDUP_GATE_SHARDS:
        results["speedup_gate_status"] = (
            f"skipped: {cpu_count} core(s) < {SPEEDUP_GATE_SHARDS}")
    elif not gate_runs:
        results["speedup_gate_status"] = "skipped: no 4-shard fork run"
    else:
        results["speedup_gate_status"] = "enforced"
        best = max(run["speedup"] for run in gate_runs)
        results["best_speedup_at_gate"] = best
        if best < SPEEDUP_GATE:
            failures.append(
                f"best speedup at {SPEEDUP_GATE_SHARDS} shards is "
                f"{best:.2f}x < {SPEEDUP_GATE}x on {cpu_count} cores")
    print(f"speedup gate: {results['speedup_gate_status']}")

    results["passed"] = not failures
    results["failures"] = failures
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"results -> {RESULTS}")

    if failures:
        print(f"FAIL: {len(failures)} gate(s) broken")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("PASS: all shard gates held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
