"""Figure 15 (Exp-5): scalability over Freebase G1..G4.

Paper setup: G1(10M nodes, 51M edges) extracted from Freebase, expanded
in a BFS manner to G2(20M, 91M), G3(30M, 130M), G4(40M, 180M); 1,000
random queries, k=20, d=2.

* (a) star search: all algorithms slow down as the graph grows; stark and
  stard stay at least an order of magnitude faster than graphTA/BP, and
  stard improves stark by 35-45%.
* (b) starjoin: with the alpha-scheme, SimSize/SimTop/SimDec are 20-44%
  faster than Rand/MaxDeg across sizes.

Scaled setup: the same nested-BFS-expansion protocol over the
freebase-like universe, with edge counts in the paper's 51:91:130:180
proportion.
"""

import pytest

from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_series,
    run_general_workload,
    run_star_workload,
)
from repro.graph.sampling import scalability_series
from repro.query import complex_workload, star_workload
from repro.similarity import ScoringConfig, ScoringFunction

ALGORITHMS = ("stark", "stard", "graphta", "bp")
JOIN_METHODS = ("rand", "maxdeg", "simsize", "simtop", "simdec")
K = 20
D = 2
NUM_QUERIES = 8
#: Paper edge counts 51M/91M/130M/180M, scaled 1:10000.
SIZES = (5100, 9100, 13000, 18000)

_series_cache = {}


def graph_series():
    if "series" not in _series_cache:
        universe = benchmark_graph("freebase", scale=1.3)
        _series_cache["series"] = scalability_series(
            universe, list(SIZES), seed=151
        )
    return _series_cache["series"]


def run_star_experiment():
    table = {}
    labels = []
    for i, graph in enumerate(graph_series(), start=1):
        labels.append(f"G{i}({graph.num_nodes},{graph.num_edges})")
        scorer = ScoringFunction(graph, ScoringConfig(fast=True))
        workload = star_workload(graph, NUM_QUERIES, seed=152)
        results = run_star_workload(scorer, workload, ALGORITHMS, K, d=D)
        for name, result in results.items():
            table.setdefault(name, []).append(result.avg_ms)
    return table, labels


def run_join_experiment():
    table = {}
    labels = []
    for i, graph in enumerate(graph_series(), start=1):
        labels.append(f"G{i}")
        scorer = ScoringFunction(graph, ScoringConfig(fast=True))
        workload = complex_workload(graph, 5, shape=(4, 4), seed=153)
        for method in JOIN_METHODS:
            result = run_general_workload(
                scorer, workload, k=K, d=1, alpha=0.5, method=method
            )
            table.setdefault(method, []).append(result.avg_ms)
    return table, labels


def test_fig15a_star_scalability(benchmark):
    table, labels = benchmark.pedantic(
        run_star_experiment, rounds=1, iterations=1
    )
    print_series(
        f"Figure 15(a) -- star search scalability on freebase-like G1..G4 "
        f"(k={K}, d={D}, {NUM_QUERIES} queries/graph, avg ms/query)",
        "graph",
        labels,
        [(name, [format_ms(v) for v in values])
         for name, values in table.items()],
        save_as="fig15a_scalability_star",
    )
    stark, stard = table["stark"], table["stard"]
    graphta, bp = table["graphta"], table["bp"]
    # STAR beats both baselines on every graph size.
    for i in range(len(SIZES)):
        assert min(stark[i], stard[i]) < graphta[i]
        assert min(stark[i], stard[i]) < bp[i]
    # Baselines slow down markedly as the graph grows.
    assert graphta[-1] > graphta[0]
    assert bp[-1] > bp[0]


def test_fig15b_join_scalability(benchmark):
    table, labels = benchmark.pedantic(
        run_join_experiment, rounds=1, iterations=1
    )
    print_series(
        f"Figure 15(b) -- starjoin scalability on freebase-like G1..G4 "
        f"(k={K}, Q(4,4) x 5, avg ms/query)",
        "graph",
        labels,
        [(name, [format_ms(v) for v in values])
         for name, values in table.items()],
        save_as="fig15b_scalability_join",
    )
    totals = {m: sum(v) for m, v in table.items()}
    # The optimized decompositions are collectively no slower than the
    # baselines overall (the paper reports 20-44% faster).
    assert min(totals[m] for m in ("simsize", "simtop", "simdec")) <= \
        max(totals["rand"], totals["maxdeg"])
