"""Figure 13(a,b) (Exp-2): star-query runtime vs k (d=2).

Paper setup: d=2, k varied 1..100, same four algorithms over DBpedia (a)
and YAGO2 (b).  Expected shape: graphTA and BP grow sharply with k (their
top-scored-node exploration multiplies), stark/stard stay nearly flat.
"""

import pytest

from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_series,
    run_star_workload,
)
from repro.query import star_workload

ALGORITHMS = ("stark", "stard", "graphta", "bp")
K_VALUES = (1, 10, 20, 50, 100)
D = 2
NUM_QUERIES = 8


def run_graph(dataset: str):
    graph = benchmark_graph(dataset)
    scorer = benchmark_scorer(graph)
    workload = star_workload(graph, NUM_QUERIES, seed=113)
    table = {}
    for k in K_VALUES:
        results = run_star_workload(scorer, workload, ALGORITHMS, k, d=D)
        for name, result in results.items():
            table.setdefault(name, []).append(result.avg_ms)
    return table


@pytest.mark.parametrize("dataset", ["dbpedia", "yago2"])
def test_fig13ab_runtime_vs_k(benchmark, dataset):
    table = benchmark.pedantic(run_graph, args=(dataset,), rounds=1,
                               iterations=1)
    print_series(
        f"Figure 13(a,b) -- runtime vs k on {dataset}-like "
        f"(d={D}, {NUM_QUERIES} star queries, avg ms/query)",
        "k",
        list(K_VALUES),
        [(name, [format_ms(v) for v in values])
         for name, values in table.items()],
        save_as="fig13ab_vary_k",
    )
    from repro.eval.charts import ascii_chart
    from repro.eval.report import save_report

    chart = ascii_chart(
        f"Figure 13(a,b) shape ({dataset}-like, log scale)",
        list(K_VALUES), list(table.items()),
    )
    print(chart)
    save_report("fig13ab_vary_k", chart)
    stark, stard = table["stark"], table["stard"]
    graphta, bp = table["graphta"], table["bp"]
    # STAR dominates the baselines at the largest k.
    assert min(stark[-1], stard[-1]) < graphta[-1]
    assert min(stark[-1], stard[-1]) < bp[-1]
    # Sensitivity to k: relative growth k=1 -> k=100 is worse for the
    # baselines than for the best STAR matcher.
    star_growth = min(stark[-1], stard[-1]) / max(min(stark[0], stard[0]), 1e-9)
    baseline_growth = max(graphta[-1] / graphta[0], bp[-1] / bp[0])
    assert baseline_growth > star_growth * 0.8
