"""Learned-planner benchmark: per-query plans vs the best static engine.

Builds a mixed workload on the synthetic DBpedia-like graph -- selective
template stars, broad keyword-synthesized queries (typed wildcard
pivots), and decomposed general subgraph queries -- then:

1. **sweeps** every static star procedure (stark / stard / hybrid),
   recording per-query min-of-N latencies *and* the deterministic cost
   counters of each run;
2. **trains** a :class:`repro.plan.CostModel` from the sweep's
   (features, arm, counter-cost) observations -- the same balanced
   training a recorded experience log replayed through
   ``repro plan-fit`` would give, with every arm observing every query;
3. **evaluates** the ``plan=learned`` engine under the trained model
   against the best static configuration chosen a posteriori;
4. **checks the cold-model guardrail**: a ``plan=learned`` engine with a
   fresh (cold) model must degrade to the static plan, costing at most
   planning overhead on every query;
5. **verifies result parity**: every variant must return the same top-k
   scores rank by rank (procedures may order exact score ties
   differently, so the hash covers scores, not assignments).

The ``--smoke`` gate (plan-smoke CI) enforces the PR's acceptance
criteria:

* learned-vs-best-static geomean latency speedup >= ``MIN_SPEEDUP``
  (1.2x) -- the *best* static configuration is chosen a posteriori, so
  the planner must beat every fixed knob setting at once;
* result-hash parity across all variants;
* cold-model worst-case per-query regression <= ``MAX_COLD_REGRESSION``
  (5%, with a small absolute floor for sub-millisecond noise).

Usage::

    python benchmarks/bench_plan_learned.py            # full, saves JSON
    python benchmarks/bench_plan_learned.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import math
import sys
import time
from pathlib import Path

from repro.core.framework import Star
from repro.eval import print_table
from repro.graph import dbpedia_like
from repro.plan import CostModel, QueryPlanner, cost_units, extract_features
from repro.plan.features import CLASS_GENERAL, CLASS_STAR_DN
from repro.plan.model import COST_WEIGHTS
from repro.query import star_workload
from repro.query.keywords import synthesize_query
from repro.query.workload import complex_workload
from repro.similarity import ScoringFunction

RESULTS = Path(__file__).parent / "results" / "plan_learned.json"

MIN_SPEEDUP = 1.2
MAX_COLD_REGRESSION = 0.05
#: Absolute slack for the per-query cold gate: planning overhead is a
#: few feature lookups (well under a millisecond), but timer noise on
#: shared CI runners is routinely a few milliseconds, which would
#: dominate a pure 5% bound on the faster queries.
COLD_SLACK_S = 0.003

SCALE = 0.4
GRAPH_SEED = 7
STAR_SEED = 13
GENERAL_SEED = 41
K = 10
RIDGE = 0.3
MIN_SAMPLES = 16

#: Broad keyword queries (type + token) over the dbpedia_like
#: vocabulary: typed wildcard pivots with large posting mass, exactly
#: the regime where the lazy procedure beats the eager ones by
#: multiples.  The selective template stars pull the other way, so no
#: single static configuration wins both halves.
KEYWORDS = (
    "director brad", "actor award", "film spielberg", "producer jane",
    "person washington", "actor jolie", "director film", "writer helen",
    "actor brando", "person dicaprio", "director scorsese",
    "producer maria", "person brad", "actor jane",
)

#: Engine knobs shared by every variant.  Alpha, the decomposition
#: method and index routing are pinned so the static sweep and the
#: planner optimize the same single axis -- the star procedure -- which
#: is the axis the deterministic cost counters predict faithfully.  Per
#: the planner contract, pinned knobs are never overridden.
ENGINE_KW = dict(d=2, alpha=0.5, decomposition_method="simdec",
                 use_index="off")

STATIC_CONFIGS = ("stark", "stard", "hybrid")


def geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def build_workload(graph, smoke: bool):
    """(name, query) pairs: selective stars + keyword + general."""
    n_stars = 6 if smoke else 10
    n_kw = 8 if smoke else len(KEYWORDS)
    n_general = 2 if smoke else 4
    work = [(f"star/{i}", q)
            for i, q in enumerate(star_workload(graph, n_stars,
                                                seed=STAR_SEED))]
    work += [(f"keyword/{kws}", synthesize_query(graph, kws).query)
             for kws in KEYWORDS[:n_kw]]
    work += [(f"general/{i}", q)
             for i, q in enumerate(complex_workload(
                 graph, n_general, shape=(3, 3), seed=GENERAL_SEED))]
    return work


def make_static_engine(graph, alg: str) -> Star:
    scorer = ScoringFunction(graph)
    return Star(graph, scorer=scorer, algorithm=alg, **ENGINE_KW)


def arm_label(alg: str):
    """Map one sweep configuration to the planner's arm labels.

    Star-class plans carry the procedure, so every sweep configuration
    is on-policy for them.  General-query plans only carry the pinned
    knobs here (alpha, method, index routing), so their menu collapses
    to one arm the planner never needs a model for -- general runs are
    measured but not observed.
    """
    def arm_for(class_key: str):
        if class_key == CLASS_GENERAL:
            return None
        return f"alg={alg}|idx=auto"
    return arm_for


def train_config(engine, work, model, arm_for, passes: int = 2):
    """Observe every query's deterministic counter cost under *engine*.

    Each run becomes one training observation: the query's features,
    the configuration's arm label (``None`` skips the query), and the
    run's cost in counter units -- exactly what
    :meth:`QueryPlanner.observe` records, measured here around a plain
    static engine.  Two passes, so the model sees both the cold- and
    warm-cache states it will meet at plan time.
    """
    scorer = engine.scorer
    index = getattr(scorer, "graph_index", None)
    for _ in range(passes):
        for _name, query in work:
            features = extract_features(scorer, query, K, d=engine.d)
            arm = arm_for(features.class_key)
            if arm is None:
                continue
            calls0 = (scorer.node_score_calls, scorer.edge_score_calls)
            scanned0 = index.postings_scanned if index is not None else 0
            engine.search(query, K)
            counters = {
                "node_score_calls": scorer.node_score_calls - calls0[0],
                "edge_score_calls": scorer.edge_score_calls - calls0[1],
            }
            if index is not None:
                counters["postings_scanned"] = (
                    index.postings_scanned - scanned0)
            for key in COST_WEIGHTS:
                value = getattr(engine.last_engine_stats, key, 0)
                if value and key not in counters:
                    counters[key] = int(value)
            model.observe(features.class_key, arm, features.vector,
                          cost_units(counters))


def measure(variants, work, reps: int):
    """Per-variant per-query min-of-reps latencies plus parity hashes.

    Interleaved at query level: every variant runs the same query
    back-to-back within a rep, so slow clock drift (thermal throttling,
    shared-runner contention) hits all variants alike instead of
    penalizing whichever variant a sequential harness measures last.
    GC runs only at rep boundaries -- a collection pause inside one
    variant's timed region would otherwise charge tens of milliseconds
    to whichever engine happened to cross the allocation threshold.
    The variant order reverses on odd reps: running directly after an
    identical search leaves the CPU caches hot, so a fixed order would
    systematically favor whoever runs later in the cycle.
    """
    raw = {name: [[math.inf] * len(work) for _ in range(reps)]
           for name in variants}
    digests = {name: hashlib.sha256() for name in variants}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        ordered = list(variants.items())
        for rep in range(reps):
            gc.collect()
            cycle = ordered if rep % 2 == 0 else ordered[::-1]
            for qi, (_qname, query) in enumerate(work):
                for name, engine in cycle:
                    t0 = time.perf_counter()
                    matches = engine.search(query, K)
                    raw[name][rep][qi] = time.perf_counter() - t0
                    if rep == 0:
                        digests[name].update(repr(
                            [round(m.score, 9) for m in matches]
                        ).encode())
    finally:
        if gc_was_enabled:
            gc.enable()
    best = {
        name: [min(per_rep[qi] for per_rep in raw[name])
               for qi in range(len(work))]
        for name in variants
    }
    return best, raw, {
        name: d.hexdigest()[:16] for name, d in digests.items()
    }


def run_benchmark(smoke: bool, reps: int) -> dict:
    graph = dbpedia_like(scale=SCALE, seed=GRAPH_SEED)
    work = build_workload(graph, smoke)

    # The training sweep: every arm observes every star-class query's
    # deterministic counter cost -- the same balanced design matrix a
    # recorded experience log replayed through ``repro plan-fit``
    # yields.
    model = CostModel(ridge=RIDGE, min_samples=MIN_SAMPLES)
    t0 = time.perf_counter()
    for alg in STATIC_CONFIGS:
        train_config(make_static_engine(graph, alg), work, model,
                     arm_label(alg))
    sweep_s = time.perf_counter() - t0
    # Snapshot before measurement: the learned engine keeps observing
    # its own (on-policy) runs, which would inflate these counts.
    sweep_samples = {
        CLASS_STAR_DN: {
            arm: model.samples(CLASS_STAR_DN, arm)
            for arm in sorted(model.arms_for(CLASS_STAR_DN))
        },
    }

    learned_planner = QueryPlanner(mode="learned", model=model)
    # Cold-model guardrail pair: a learned-mode planner with a fresh
    # model must fall back to the static plan, costing only planning
    # overhead against the identical engine without a planner.
    cold_planner = QueryPlanner(mode="learned", model=CostModel())
    variants = {
        **{f"alg={alg}": make_static_engine(graph, alg)
           for alg in STATIC_CONFIGS},
        "learned": Star(graph, plan="learned", planner=learned_planner,
                        **ENGINE_KW),
        "cold": Star(graph, plan="learned", planner=cold_planner,
                     **ENGINE_KW),
        "static-default": Star(graph, **ENGINE_KW),
    }
    lat, raw, hashes = measure(variants, work, reps)
    static = {f"alg={alg}": lat[f"alg={alg}"] for alg in STATIC_CONFIGS}
    learned = lat["learned"]
    cold = lat["cold"]
    baseline = lat["static-default"]

    best_static = min(static, key=lambda name: geomean(static[name]))
    oracle = [min(static[name][i] for name in static)
              for i in range(len(work))]
    speedup = geomean(static[best_static]) / geomean(learned)

    # Paired per-rep differencing for the cold gate: within one rep the
    # cold and baseline runs of a query are back-to-back, so their
    # difference isolates planner overhead; the min over reps then
    # discards one-sided scheduler/allocator spikes that a plain
    # min-vs-min comparison can attribute to either side.  A query that
    # would still fail gets extra paired samples before it counts: the
    # slowest queries jitter by ~10% run to run, far above the real
    # planning overhead (~20 microseconds), and a handful more pairs is
    # much cheaper than a flaky gate.
    def _paired_retrial(query, diff):
        pair = (variants["cold"], variants["static-default"])
        gc.disable()
        try:
            for r in range(4):
                first, second = pair if r % 2 else pair[::-1]
                t0 = time.perf_counter()
                first.search(query, K)
                t1 = time.perf_counter()
                second.search(query, K)
                t2 = time.perf_counter()
                cold_s, base_s = (t1 - t0, t2 - t1) if first is pair[0] \
                    else (t2 - t1, t1 - t0)
                diff = min(diff, cold_s - base_s)
        finally:
            gc.enable()
        return diff

    cold_regressions = []
    for qi, (_qname, query) in enumerate(work):
        diff = min(raw["cold"][rep][qi] - raw["static-default"][rep][qi]
                   for rep in range(reps))
        if (diff > COLD_SLACK_S
                and diff / baseline[qi] > MAX_COLD_REGRESSION):
            diff = _paired_retrial(query, diff)
        if diff > COLD_SLACK_S:
            cold_regressions.append(diff / baseline[qi])
    worst_cold = max(cold_regressions, default=0.0)

    per_query = []
    for i, (name, _query) in enumerate(work):
        per_query.append({
            "query": name,
            "best_static_ms": round(static[best_static][i] * 1000, 3),
            "learned_ms": round(learned[i] * 1000, 3),
            "oracle_ms": round(oracle[i] * 1000, 3),
        })

    return {
        "graph": {"scale": SCALE, "nodes": graph.num_nodes,
                  "edges": graph.num_edges},
        "workload": {
            "queries": len(work),
            "star": sum(1 for n, _ in work if n.startswith("star/")),
            "keyword": sum(1 for n, _ in work if n.startswith("keyword/")),
            "general": sum(1 for n, _ in work if n.startswith("general/")),
            "k": K,
        },
        "training": {
            "source": "static sweep (every arm observes every query)",
            "sweep_seconds": round(sweep_s, 2),
            "ridge": RIDGE, "min_samples": MIN_SAMPLES,
            "samples": sweep_samples,
        },
        "geomean_ms": {
            **{name: round(geomean(lat) * 1000, 3)
               for name, lat in static.items()},
            "learned": round(geomean(learned) * 1000, 3),
            "cold": round(geomean(cold) * 1000, 3),
            "static_default": round(geomean(baseline) * 1000, 3),
            "oracle": round(geomean(oracle) * 1000, 3),
        },
        "best_static": best_static,
        "speedup_vs_best_static": round(speedup, 3),
        "oracle_speedup": round(
            geomean(static[best_static]) / geomean(oracle), 3),
        "learned_decisions": dict(learned_planner.decisions),
        "worst_cold_regression": round(worst_cold, 4),
        "parity": len(set(hashes.values())) == 1,
        "hashes": hashes,
        "per_query": per_query,
        "reps": reps,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced load; exit non-zero on gate failure")
    parser.add_argument("--reps", type=int, default=None,
                        help="latency repeats per variant (min taken)")
    args = parser.parse_args(argv)
    reps = args.reps or 3

    results = run_benchmark(args.smoke, reps)

    rows = []
    for name, ms in sorted(results["geomean_ms"].items(),
                           key=lambda kv: kv[1]):
        marker = ""
        if name == results["best_static"]:
            marker = " (best static)"
        rows.append([name + marker, f"{ms:.2f} ms"])
    print_table(
        f"Learned planner vs static plans "
        f"(geomean over {results['workload']['queries']} queries, "
        f"min of {results['reps']} reps)",
        ["variant", "geomean latency"],
        rows,
        save_as=None,
    )
    print(f"speedup vs best static: {results['speedup_vs_best_static']}x "
          f"(gate >= {MIN_SPEEDUP}x, oracle {results['oracle_speedup']}x)")
    print(f"worst cold-model regression: "
          f"{results['worst_cold_regression'] * 100:.1f}% "
          f"(gate <= {MAX_COLD_REGRESSION * 100:.0f}%)")
    print(f"parity: {results['parity']}")

    failures = []
    if not results["parity"]:
        failures.append(
            f"top-k score parity broken across variants: "
            f"{results['hashes']}")
    if results["speedup_vs_best_static"] < MIN_SPEEDUP:
        failures.append(
            f"learned speedup {results['speedup_vs_best_static']}x "
            f"< {MIN_SPEEDUP}x over best static "
            f"({results['best_static']})")
    if results["worst_cold_regression"] > MAX_COLD_REGRESSION:
        failures.append(
            f"cold-model guardrail: worst per-query regression "
            f"{results['worst_cold_regression'] * 100:.1f}% "
            f"> {MAX_COLD_REGRESSION * 100:.0f}%")
    results["passed"] = not failures
    results["failures"] = failures
    if not args.smoke:
        RESULTS.write_text(json.dumps(results, indent=2, sort_keys=True)
                           + "\n")
        print(f"wrote {RESULTS}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("plan learned smoke OK" if args.smoke
          else "plan learned benchmark OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
