"""Ablations for the design choices DESIGN.md calls out.

Not a paper artifact; quantifies three internal decisions:

1. **Proposition 3 pruning** (Section V-A): stark's leaf lists pruned to
   ``k + s - 1`` entries (valid in the non-injective model) vs unpruned.
2. **Section V-C hybrid alternative**: the TA-guided two-stage search vs
   stark and stard, at d = 1 and d = 2 (the paper left this to "future
   study").
3. **Message passing (stard) vs eager traversal (stark-d)** lattice work:
   how many pivots each evaluates exactly, the mechanism behind Fig. 12.
"""

from repro.core import HybridStarSearch, StarDSearch, StarKSearch
from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_table,
    time_algorithm,
)
from repro.query import StarQuery, star_workload

K = 20
NUM_QUERIES = 10


def run_prop3_ablation():
    import time

    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = star_workload(graph, NUM_QUERIES, seed=161)
    rows = []
    for label, prop3 in (("prop3 on", True), ("prop3 off", False)):
        scorer.clear_cache()
        start = time.perf_counter()
        pops = 0
        for query in workload:
            matcher = StarKSearch(scorer, injective=False, prop3=prop3)
            matcher.search(StarQuery.from_query(query), K)
            pops += matcher.stats.lattice_pops
        elapsed = time.perf_counter() - start
        rows.append([label, format_ms(elapsed / NUM_QUERIES, is_seconds=True),
                     pops])
    return rows


def run_hybrid_ablation():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = star_workload(graph, NUM_QUERIES, seed=162)
    rows = []
    for d in (1, 2):
        for name in ("stark", "stard", "hybrid"):
            result = time_algorithm(name, scorer, workload, K, d=d)
            rows.append([name, d, format_ms(result.avg_ms)])
    return rows


def run_pivot_evaluation_ablation():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = star_workload(graph, NUM_QUERIES, seed=163)
    eager = lazy = considered = 0
    for query in workload:
        star = StarQuery.from_query(query)
        stark = StarKSearch(scorer, d=2)
        stark.search(star, K)
        eager += stark.stats.pivots_with_match
        considered += stark.stats.pivots_considered
        stard = StarDSearch(scorer, d=2)
        stard.search(star, K)
        lazy += stard.pivots_evaluated
    return [
        ["pivot candidates (total)", considered],
        ["stark-d exact evaluations", eager],
        ["stard exact evaluations", lazy],
    ]


def test_ablation_prop3(benchmark):
    rows = benchmark.pedantic(run_prop3_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation -- Proposition 3 leaf-list pruning (non-injective stark)",
        ["variant", "avg runtime", "lattice pops"],
        rows,
        save_as="ablation_prop3",
    )
    # Pruning never increases the lattice work.
    assert rows[0][2] <= rows[1][2]


def test_ablation_hybrid(benchmark):
    rows = benchmark.pedantic(run_hybrid_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation -- Section V-C hybrid vs stark vs stard",
        ["matcher", "d", "avg runtime"],
        rows,
        save_as="ablation_hybrid",
    )
    assert len(rows) == 6


def run_sketch_ablation():
    import time

    from repro.graph.sketch import NeighborhoodSketch

    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = star_workload(graph, NUM_QUERIES, seed=164)
    sketch = NeighborhoodSketch(graph)
    rows = []
    for label, use_sketch in (("sketch on", sketch), ("sketch off", None)):
        scorer.clear_cache()
        start = time.perf_counter()
        pruned = 0
        for query in workload:
            matcher = StarKSearch(scorer, sketch=use_sketch)
            matcher.search(StarQuery.from_query(query), K)
            pruned += matcher.stats.pivots_sketch_pruned
        elapsed = time.perf_counter() - start
        rows.append([label, format_ms(elapsed / NUM_QUERIES, is_seconds=True),
                     pruned])
    rows.append(["sketch memory", f"{sketch.memory_bytes() // 1024}KB", "-"])
    return rows


def test_ablation_sketch(benchmark):
    rows = benchmark.pedantic(run_sketch_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation -- [2]'s neighborhood sketch (stark, d=1)",
        ["variant", "avg runtime / size", "pivots pruned"],
        rows,
        save_as="ablation_sketch",
    )
    assert len(rows) == 3


def run_vertex_engine_ablation():
    from repro.core.candidates import node_candidates
    from repro.core.vertex_centric import propagate_vertex_centric

    graph = benchmark_graph("yago2")
    scorer = benchmark_scorer(graph)
    workload = star_workload(graph, 5, seed=165)
    rows = []
    for workers in (1, 2, 4, 8):
        sent = cross = supersteps = 0
        for query in workload:
            star = StarQuery.from_query(query)
            leaf = star.leaves[0][0]
            seeds = dict(node_candidates(scorer, leaf))
            if not seeds:
                continue
            _layers, engine = propagate_vertex_centric(
                graph, seeds, d=2, num_workers=workers
            )
            sent += engine.messages_sent
            cross += engine.cross_partition_messages
            supersteps = max(supersteps, engine.supersteps_run)
        share = (100.0 * cross / sent) if sent else 0.0
        rows.append([workers, sent, cross, f"{share:.0f}%", supersteps])
    return rows


def test_ablation_vertex_engine(benchmark):
    rows = benchmark.pedantic(
        run_vertex_engine_ablation, rounds=1, iterations=1
    )
    print_table(
        "Ablation -- vertex-centric propagation (Section V-B Remark): "
        "communication vs partition count (d=2)",
        ["workers", "messages", "cross-partition", "share", "supersteps"],
        rows,
        save_as="ablation_vertex",
    )
    # Total message volume is partition-independent; the cross-partition
    # share grows with worker count; d rounds suffice (<= d + 1 here).
    assert len({row[1] for row in rows}) == 1
    shares = [int(row[3].rstrip("%")) for row in rows]
    assert shares[0] == 0
    assert shares == sorted(shares)
    assert all(row[4] <= 3 for row in rows)


def run_directed_ablation():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = star_workload(graph, NUM_QUERIES, seed=166)
    rows = []
    for label, directed in (("undirected", False), ("directed", True)):
        import time

        scorer.clear_cache()
        start = time.perf_counter()
        found = 0
        for query in workload:
            matcher = StarKSearch(scorer, directed=directed)
            found += len(matcher.search(StarQuery.from_query(query), K))
        elapsed = time.perf_counter() - start
        rows.append([label, format_ms(elapsed / NUM_QUERIES, is_seconds=True),
                     found])
    return rows


def test_ablation_directed(benchmark):
    rows = benchmark.pedantic(run_directed_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation -- directed (RDF-style) vs undirected matching (stark, d=1)",
        ["mode", "avg runtime", "matches found"],
        rows,
        save_as="ablation_directed",
    )
    # Orientation enforcement can only shrink the answer set.
    assert rows[1][2] <= rows[0][2]


def test_ablation_pivot_evaluations(benchmark):
    rows = benchmark.pedantic(
        run_pivot_evaluation_ablation, rounds=1, iterations=1
    )
    print_table(
        "Ablation -- exact pivot evaluations at d=2 (mechanism of Fig. 12)",
        ["quantity", "count"],
        rows,
        save_as="ablation_pivots",
    )
    considered = rows[0][1]
    lazy = rows[2][1]
    # stard's laziness: it exactly evaluates a strict subset of pivots.
    assert lazy < considered
