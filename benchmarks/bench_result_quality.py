"""Result quality: STAR completeness vs BP's cyclic incompleteness.

Not a numbered paper artifact, but it measures two claims the paper makes
in prose (Section VII): the STAR framework's rank join "terminates once
the top-k matches are identified ... without losing completeness", while
BP "does not guarantee the completeness" for cyclic queries (exact only
on acyclic ones).  graphTA (exact) provides the reference on workloads
where the brute-force oracle would be too slow.
"""

from repro.baselines import BeliefPropagation, GraphTA
from repro.core import Star
from repro.eval import benchmark_graph, benchmark_scorer, print_table
from repro.eval.quality import AggregateQuality, compare_results
from repro.query import complex_workload, star_workload

K = 10
NUM_QUERIES = 8


def run_experiment():
    graph = benchmark_graph("yago2")
    scorer = benchmark_scorer(graph)
    rows = []
    for label, workload in (
        ("star (acyclic)", star_workload(graph, NUM_QUERIES, seed=171)),
        ("cyclic Q(4,4)", complex_workload(graph, NUM_QUERIES, shape=(4, 4),
                                           seed=172)),
    ):
        reference = [GraphTA(scorer).search(q, K) for q in workload]
        for name, matcher in (
            ("STAR", lambda q: Star(graph, scorer=scorer).search(q, K)),
            ("BP", lambda q: BeliefPropagation(scorer).search(q, K)),
        ):
            reports = [
                compare_results(matcher(q), ref, K)
                for q, ref in zip(workload, reference)
            ]
            agg = AggregateQuality(reports)
            rows.append([
                label, name,
                f"{agg.avg_precision:.2f}",
                f"{agg.avg_score_recall:.3f}",
                f"{agg.top1_rate:.2f}",
            ])
    return rows


def test_result_quality(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"Result quality vs exact reference (k={K}, "
        f"{NUM_QUERIES} queries/workload)",
        ["workload", "matcher", "precision@k", "score recall", "top-1 rate"],
        rows,
        save_as="result_quality",
    )
    by = {(r[0], r[1]): r for r in rows}
    # STAR is complete on both workloads.
    for workload in ("star (acyclic)", "cyclic Q(4,4)"):
        assert float(by[(workload, "STAR")][2]) == 1.0
        assert float(by[(workload, "STAR")][4]) == 1.0
    # BP is exact on the acyclic workload ...
    assert float(by[("star (acyclic)", "BP")][2]) == 1.0
    # ... and good-but-unguaranteed on cycles: most of the score mass is
    # recovered even when completeness is lost (the Section VII claim).
    assert 0.7 <= float(by[("cyclic Q(4,4)", "BP")][3]) <= 1.0
