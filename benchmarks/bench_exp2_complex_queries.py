"""Exp-2 continued: the same k-sensitivity on *complex* (cyclic) queries.

Section VII: "We conduct the above experiments on more complicated graph
queries and had very similar observations.  The reason is obvious.
Since stark and stard optimize the search based on bigger structures
(star vs. single node/edge), their search will have a lower chance to be
stuck in local optimum."

This bench repeats the Fig. 13(a) sweep with cyclic Q(4,4) queries:
STAR (decompose + starjoin) vs graphTA vs BP.
"""

import time

from repro.baselines import BeliefPropagation, GraphTA
from repro.core import Star
from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_series,
)
from repro.query import complex_workload

K_VALUES = (1, 10, 20, 50)
NUM_QUERIES = 6


def run_experiment():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = complex_workload(graph, NUM_QUERIES, shape=(4, 4), seed=181)
    matchers = {
        "STAR": lambda q, k: Star(
            graph, scorer=scorer, decomposition_method="maxdeg"
        ).search(q, k),
        "graphta": lambda q, k: GraphTA(scorer).search(q, k),
        "bp": lambda q, k: BeliefPropagation(scorer).search(q, k),
    }
    table = {}
    for name, run in matchers.items():
        for k in K_VALUES:
            scorer.clear_cache()
            start = time.perf_counter()
            for query in workload:
                run(query, k)
            elapsed = time.perf_counter() - start
            table.setdefault(name, []).append(1000 * elapsed / NUM_QUERIES)
    return table


def test_exp2_complex_queries(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        f"Exp-2 (complex queries) -- runtime vs k, cyclic Q(4,4) on "
        f"dbpedia-like ({NUM_QUERIES} queries, avg ms/query)",
        "k",
        list(K_VALUES),
        [(name, [format_ms(v) for v in values])
         for name, values in table.items()],
        save_as="exp2_complex_queries",
    )
    star, graphta, bp = table["STAR"], table["graphta"], table["bp"]
    # "Very similar observations": STAR wins at the largest k, and the
    # baselines grow faster with k than STAR does.
    assert star[-1] < graphta[-1]
    assert star[-1] < bp[-1]
    star_growth = star[-1] / max(star[0], 1e-9)
    assert max(graphta[-1] / graphta[0], bp[-1] / bp[0]) > star_growth * 0.8
