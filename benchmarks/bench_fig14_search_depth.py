"""Figure 14(d) (Exp-3): average search depth D and its deviation.

Paper setup: the total depth ``D = sum_i |L_i|`` consumed by starjoin per
query, averaged per workload, with standard deviation as error bars.
Expected shape: the optimized decompositions (SimSize/SimTop/SimDec) need
less depth than Rand, with smaller deviation (balanced search effort) --
the property the paper flags as important for distributed processing.

Scaled-setting deviation (recorded in EXPERIMENTS.md): on 4-5 node query
shapes the minimal pivot cover is often unique, so SimSize / SimTop /
SimDec (and usually MaxDeg) pick identical decompositions and their
depths coincide; the Rand-vs-optimized gap is the differentiating signal
here.  Alpha is held at 0.5 for all methods so depth differences are
attributable to the decomposition alone.
"""

from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    print_series,
    run_general_workload,
)
from repro.query import complex_workload

SHAPES = ((4, 4), (4, 5))
K = 20
NUM_QUERIES = 8
METHODS = ("rand", "maxdeg", "simsize", "simtop", "simdec")


def run_experiment():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workloads = {
        shape: complex_workload(graph, NUM_QUERIES, shape=shape, seed=144)
        for shape in SHAPES
    }
    depth_table = {}
    std_table = {}
    for method in METHODS:
        for shape in SHAPES:
            result = run_general_workload(
                scorer, workloads[shape], k=K, alpha=0.5, method=method
            )
            depth_table.setdefault(method, []).append(result.avg_depth)
            std_table.setdefault(method, []).append(result.depth_std)
    return depth_table, std_table


def test_fig14d_search_depth(benchmark):
    depth_table, std_table = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    shapes = [f"Q{s}" for s in SHAPES]
    print_series(
        f"Figure 14(d) -- average search depth D (k={K}, "
        f"{NUM_QUERIES} queries/shape)",
        "shape",
        shapes,
        [(m, [f"{d:.0f} (+/-{s:.0f})" for d, s in zip(depths, std_table[m])])
         for m, depths in depth_table.items()],
        save_as="fig14d_search_depth",
    )
    # The optimized decompositions need no more depth than Rand (the
    # paper's headline ordering; depth is deterministic given the seeds).
    total = {m: sum(v) for m, v in depth_table.items()}
    assert total["simdec"] <= total["rand"]
    assert min(total[m] for m in ("simsize", "simtop", "simdec")) <= \
        total["rand"]
