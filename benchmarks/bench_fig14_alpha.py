"""Figure 14(a) (Exp-3): starjoin runtime vs the alpha-scheme parameter.

Paper setup: random complex-query workload on DBpedia, k=100, d=1;
decomposition methods Rand / MaxDeg / SimSize / SimTop / SimDec; alpha
swept over (0, 1).  Expected shape: runtime varies with alpha -- a well
chosen alpha is measurably cheaper than a poorly chosen one -- and the
per-method optima differ (the paper reports 0.3 for MaxDeg/SimTop, 0.9
for SimDec, 0.5 for the symmetric Rand/SimSize).
"""

from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_series,
    run_general_workload,
)
from repro.query import complex_workload

METHODS = ("rand", "maxdeg", "simsize", "simtop", "simdec")
ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)
K = 20
NUM_QUERIES = 6


def run_experiment():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = complex_workload(graph, NUM_QUERIES, shape=(4, 5), seed=141)
    table = {}
    for method in METHODS:
        for alpha in ALPHAS:
            result = run_general_workload(
                scorer, workload, k=K, alpha=alpha, method=method
            )
            table.setdefault(method, []).append(result.avg_ms)
    return table


def test_fig14a_alpha_sweep(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        f"Figure 14(a) -- starjoin runtime vs alpha on dbpedia-like "
        f"(k={K}, Q(4,5) x {NUM_QUERIES}, avg ms/query)",
        "alpha",
        list(ALPHAS),
        [(m, [format_ms(v) for v in values]) for m, values in table.items()],
        save_as="fig14a_alpha",
    )
    # Alpha matters: at least one method shows a >= 10% best-vs-worst gap.
    spreads = [
        (max(values) - min(values)) / max(values) for values in table.values()
    ]
    assert max(spreads) >= 0.10
    # Every configuration completed with positive runtime.
    assert all(v > 0 for values in table.values() for v in values)
