"""Semantic-tier benchmarks: recall@k uplift at bounded latency.

Assertion-level checks for the ``repro.ann`` subsystem:

1. **Recall@k uplift**: on a paraphrase workload -- entity names
   perturbed past token reach (space removal, transposition, vowel
   drop) -- candidate generation with ``use_semantic=on`` must place
   the true entity in its top ``K`` at least ``MIN_RECALL_UPLIFT``
   more often than the token-only seed path.  Both arms run the same
   low node threshold: the token arm cannot see an out-of-vocabulary
   entity at *any* threshold, so the uplift isolates candidate recall,
   not scoring leniency.
2. **Latency bound**: p95 per-query candidate latency with the tier
   engaged stays under ``MAX_P95_MS`` -- the probe + percentile-skipped
   exact rerank must not turn into a hidden linear scan.
3. **Off parity**: ``use_semantic=off`` produces byte-identical
   candidate lists to a detached scorer, on both the paraphrase and
   the in-vocabulary workloads.

Smoke mode (CI)::

    python benchmarks/bench_ann_semantic.py --smoke

runs a reduced load and exits non-zero when any gate fails.  The full
run also writes ``benchmarks/results/ann_recall.json``.
"""

import argparse
import hashlib
import json
import random
import sys
import time
from pathlib import Path

from repro.ann import attach_semantic, detach_semantic
from repro.core.candidates import node_candidates
from repro.eval import benchmark_graph, print_table
from repro.query import Query
from repro.similarity import ScoringConfig
from repro.similarity.scoring import ScoringFunction

RESULTS = Path(__file__).parent / "results" / "ann_recall.json"

K = 10
NUM_QUERIES = 120
SEED = 2016
#: Out-of-vocabulary paraphrases carry only character-level evidence,
#: which lands under the default 0.25 threshold; both arms run at the
#: same lowered threshold so the comparison is pure candidate recall.
NODE_THRESHOLD = 0.1
#: The CI gate: semantic recall@K minus token-only recall@K.
MIN_RECALL_UPLIFT = 0.3
#: The CI gate: p95 per-query candidate latency, tier engaged.
MAX_P95_MS = 250.0


def _perturb(name: str, rng: random.Random) -> str:
    """Push *name* out of token reach while keeping it char-similar."""
    squashed = "".join(ch for ch in name.lower() if ch.isalnum())
    kind = rng.randrange(3)
    if kind == 0 or len(squashed) < 4:
        return squashed  # "Spike Jolie" -> "spikejolie"
    if kind == 1:  # transpose two adjacent inner characters
        i = rng.randrange(1, len(squashed) - 2)
        chars = list(squashed)
        chars[i], chars[i + 1] = chars[i + 1], chars[i]
        return "".join(chars)
    vowels = [i for i, ch in enumerate(squashed[1:-1], start=1)
              if ch in "aeiou"]
    if not vowels:
        return squashed
    drop = rng.choice(vowels)
    return squashed[:drop] + squashed[drop + 1:]


def build_workload(graph, num_queries: int, seed: int = SEED):
    """``(query_node, true_id)`` pairs of perturbed entity names.

    Queries are untyped: a type annotation would route the shortlist
    through the subtype index and fill it with same-typed nodes, which
    is the in-vocabulary regime the ``auto`` tier deliberately leaves
    alone.  Paraphrase lookup is the untyped out-of-vocabulary case.
    """
    rng = random.Random(seed)
    node_ids = [nid for nid in graph.nodes()
                if len(graph.node(nid).name) >= 6]
    targets = rng.sample(node_ids, min(num_queries, len(node_ids)))
    workload = []
    for nid in targets:
        q = Query()
        q.add_node(_perturb(graph.node(nid).name, rng))
        workload.append((q.nodes[0], nid))
    return workload


def result_digest(lists) -> str:
    payload = repr(lists).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _run_arm(scorer, workload):
    """Candidate lists + per-query latencies for one scorer arm."""
    lists, latencies = [], []
    for qn, _true in workload:
        start = time.perf_counter()
        lists.append(node_candidates(scorer, qn, limit=K))
        latencies.append((time.perf_counter() - start) * 1000.0)
    return lists, latencies


def _recall(lists, workload) -> float:
    hits = sum(
        1 for cands, (_qn, true) in zip(lists, workload)
        if any(nid == true for nid, _ in cands)
    )
    return hits / max(1, len(workload))


def _p95(latencies) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def run_recall(num_queries: int = NUM_QUERIES):
    """Token-only vs semantic recall@K on the paraphrase workload."""
    graph = benchmark_graph("yago2")
    workload = build_workload(graph, num_queries)
    config = ScoringConfig(node_threshold=NODE_THRESHOLD)

    token_scorer = ScoringFunction(graph, config)
    token_lists, token_lat = _run_arm(token_scorer, workload)

    sem_scorer = ScoringFunction(graph, config)
    tier = attach_semantic(sem_scorer, mode="auto")
    tier.ensure_built()  # build outside the timed region (cold-start
    # cost is a one-off; bench_store_coldstart covers attach paths)
    sem_lists, sem_lat = _run_arm(sem_scorer, workload)

    return {
        "graph": {"nodes": graph.num_nodes, "dataset": "yago2"},
        "queries": len(workload),
        "k": K,
        "node_threshold": NODE_THRESHOLD,
        "token_only": {
            "recall": round(_recall(token_lists, workload), 4),
            "p95_ms": round(_p95(token_lat), 3),
            "digest": result_digest(token_lists),
        },
        "semantic": {
            "recall": round(_recall(sem_lists, workload), 4),
            "p95_ms": round(_p95(sem_lat), 3),
            "digest": result_digest(sem_lists),
            "probed": tier.probed,
            "reranked": tier.reranked,
            "skipped": tier.skipped,
        },
    }


def run_off_parity(num_queries: int = NUM_QUERIES):
    """use_semantic=off must be byte-identical to a detached scorer."""
    graph = benchmark_graph("yago2")
    config = ScoringConfig(node_threshold=NODE_THRESHOLD)
    paraphrase = build_workload(graph, num_queries)
    rng = random.Random(SEED + 1)
    in_vocab = []
    for nid in rng.sample(list(graph.nodes()), min(num_queries,
                                                   graph.num_nodes)):
        q = Query()
        q.add_node(graph.node(nid).name)
        in_vocab.append((q.nodes[0], nid))

    digests = {}
    for label, workload in (("paraphrase", paraphrase),
                            ("in_vocab", in_vocab)):
        detached = ScoringFunction(graph, config)
        base, _ = _run_arm(detached, workload)

        off_scorer = ScoringFunction(graph, config)
        attach_semantic(off_scorer, mode="off")
        off, _ = _run_arm(off_scorer, workload)
        detach_semantic(off_scorer)

        digests[label] = {
            "detached": result_digest(base),
            "off": result_digest(off),
            "identical": base == off,
        }
    return digests


def test_ann_recall_uplift(benchmark):
    results = benchmark.pedantic(run_recall, rounds=1, iterations=1)
    uplift = results["semantic"]["recall"] - results["token_only"]["recall"]
    assert uplift >= MIN_RECALL_UPLIFT, f"recall uplift {uplift:.3f}"
    assert results["semantic"]["p95_ms"] < MAX_P95_MS
    print_table(
        f"Semantic-tier recall@{K} -- yago2 paraphrase workload "
        f"({results['queries']} queries)",
        ["variant", "recall", "p95 / query", "digest"],
        _rows(results),
        save_as="ann_recall",
    )


def test_ann_off_parity(benchmark):
    digests = benchmark.pedantic(run_off_parity, rounds=1, iterations=1)
    for label, d in digests.items():
        assert d["identical"], f"use_semantic=off changed {label} candidates"


def _rows(results):
    return [
        ["token-only (seed path)",
         f"{results['token_only']['recall']:.2f}",
         f"{results['token_only']['p95_ms']:.2f} ms",
         results["token_only"]["digest"]],
        ["semantic (ANN + exact rerank)",
         f"{results['semantic']['recall']:.2f}",
         f"{results['semantic']['p95_ms']:.2f} ms",
         results["semantic"]["digest"]],
        ["uplift",
         f"{results['semantic']['recall'] - results['token_only']['recall']:.2f}",
         f"gate >= {MIN_RECALL_UPLIFT}", ""],
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced load; exit non-zero on gate failure")
    parser.add_argument("--queries", type=int, default=None)
    args = parser.parse_args(argv)
    num_queries = args.queries or (30 if args.smoke else NUM_QUERIES)

    results = run_recall(num_queries)
    uplift = results["semantic"]["recall"] - results["token_only"]["recall"]
    print_table(
        f"Semantic-tier recall@{K} -- yago2 paraphrase workload "
        f"({results['queries']} queries, threshold={NODE_THRESHOLD})",
        ["variant", "recall", "p95 / query", "digest"],
        _rows(results),
        save_as=None if args.smoke else "ann_recall",
    )

    failures = []
    if uplift < MIN_RECALL_UPLIFT:
        failures.append(
            f"recall uplift {uplift:.3f} < {MIN_RECALL_UPLIFT}")
    if results["semantic"]["p95_ms"] >= MAX_P95_MS:
        failures.append(
            f"semantic p95 {results['semantic']['p95_ms']:.1f} ms "
            f">= {MAX_P95_MS} ms")

    parity = run_off_parity(num_queries)
    for label, d in parity.items():
        status = "identical" if d["identical"] else "DIVERGED"
        print(f"off parity [{label}]: detached={d['detached']} "
              f"off={d['off']} ({status})")
        if not d["identical"]:
            failures.append(f"use_semantic=off changed {label} candidates")

    results["off_parity"] = parity
    results["uplift"] = round(uplift, 4)
    results["gates"] = {"min_recall_uplift": MIN_RECALL_UPLIFT,
                        "max_p95_ms": MAX_P95_MS}
    results["passed"] = not failures
    results["failures"] = failures
    if not args.smoke:
        RESULTS.write_text(json.dumps(results, indent=2, sort_keys=True)
                           + "\n")
        print(f"wrote {RESULTS}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ann smoke OK" if args.smoke else "ann benchmark OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
