"""Table I: dataset summary (nodes, edges, node types, relations, size).

Paper values (full scale):
    DBpedia   4.2M nodes  133.4M edges   359 types   800 relations  40G
    YAGO2     2.9M nodes  11M edges    6,543 types   349 relations  18.5G
    Freebase  40.3M nodes 180M edges  10,110 types 9,101 relations  88G

Our generators reproduce the *proportions* (density ordering, type/
relation richness ordering) at benchmark scale; this bench regenerates
the summary table from the actual generated graphs.
"""

from repro.eval import benchmark_graph, print_table
from repro.graph import summarize


def build_rows():
    rows = []
    for name in ("dbpedia", "yago2", "freebase"):
        stats = summarize(benchmark_graph(name))
        rows.append(list(stats.as_row()) + [f"{stats.avg_degree:.1f}"])
    return rows


def test_table1_dataset_summary(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table(
        "Table I -- datasets (scaled reproduction)",
        ["graph", "nodes", "edges", "node types", "relations", "est size",
         "avg degree"],
        rows,
        save_as="table1_datasets",
    )
    by_name = {row[0]: row for row in rows}
    dbpedia, yago, freebase = (
        by_name["dbpedia-like"], by_name["yago2-like"], by_name["freebase-like"]
    )
    # Table I proportions that must survive scaling:
    # DBpedia is the densest by an order of magnitude.
    assert float(dbpedia[6]) > 4 * float(yago[6])
    assert float(dbpedia[6]) > 4 * float(freebase[6])
    # Freebase is the largest; YAGO2/Freebase are type-richer than DBpedia.
    assert freebase[1] > dbpedia[1] and freebase[1] > yago[1]
    assert yago[3] > dbpedia[3] and freebase[3] > dbpedia[3]
    # Freebase has the most relations.
    assert freebase[4] > yago[4]
