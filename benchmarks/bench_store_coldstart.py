"""Cold-start benchmark: RKGS snapshot load vs RKGS2 zero-copy open.

Measures, in freshly forked children (so imports, allocator state and
page cache warm-up never leak between variants):

* **open** -- time from ``load_snapshot`` / ``KnowledgeGraph.open_mmap``
  returning a usable graph;
* **first query** -- one stark search on the cold graph;
* **RSS delta** -- resident-set growth attributable to the graph, read
  from ``/proc/self/statm`` (0 where procfs is unavailable);
* **parity** -- a hash over the top-k (assignment, score) pairs, which
  must be identical across variants.

The ``--smoke`` gate (wired into perf-smoke CI) enforces the PR's
acceptance criterion: the mmap open must be at least ``MIN_SPEEDUP``
(5x) faster than the snapshot load at full result parity.

Usage::

    python benchmarks/bench_store_coldstart.py            # full, saves JSON
    python benchmarks/bench_store_coldstart.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing as mp
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.eval import print_table
from repro.graph import KnowledgeGraph, dbpedia_like
from repro.query import parse_query

RESULTS = Path(__file__).parent / "results" / "store_coldstart.json"

QUERY = "(?m:person) -[?]- (?f:film)"
K = 10
MIN_SPEEDUP = 5.0
SCALE = 1.0
SMOKE_SCALE = 0.5
REPEATS = 5


def _rss_kb() -> int:
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * (os.sysconf("SC_PAGE_SIZE")
                                                    // 1024)
    except (OSError, ValueError, IndexError):
        return 0


def _child_main(variant: str, path: str, conn) -> None:
    """One cold open + first query, timed inside a fresh process."""
    try:
        from repro.core import Star
        from repro.dynamic.snapshot import load_snapshot

        query = parse_query(QUERY, name="coldstart")
        rss_before = _rss_kb()
        t0 = time.perf_counter()
        if variant == "snapshot":
            graph = load_snapshot(path)
        else:
            graph = KnowledgeGraph.open_mmap(path)
        t_open = time.perf_counter() - t0
        t1 = time.perf_counter()
        matches = Star(graph, use_index="off").search(query, K)
        t_query = time.perf_counter() - t1
        digest = hashlib.sha256(repr(
            [(m.key(), round(m.score, 9)) for m in matches]
        ).encode()).hexdigest()[:16]
        conn.send({
            "open_ms": t_open * 1000.0,
            "first_query_ms": t_query * 1000.0,
            "rss_delta_kb": max(0, _rss_kb() - rss_before),
            "hash": digest,
        })
    except BaseException as exc:  # pragma: no cover - surfaced by parent
        conn.send({"error": repr(exc)})
    finally:
        conn.close()


def _measure(variant: str, path: str, repeats: int) -> dict:
    """Best-of-N cold runs of one variant, each in its own child."""
    ctx = mp.get_context("spawn" if not hasattr(os, "fork") else "fork")
    samples = []
    for _ in range(repeats):
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child_main, args=(variant, path, send))
        proc.start()
        send.close()
        sample = recv.recv()
        proc.join(timeout=120)
        if "error" in sample:
            raise RuntimeError(f"{variant} child failed: {sample['error']}")
        samples.append(sample)
    hashes = {s["hash"] for s in samples}
    if len(hashes) != 1:
        raise RuntimeError(f"{variant} results unstable across runs")
    return {
        "open_ms": round(min(s["open_ms"] for s in samples), 3),
        "first_query_ms": round(min(s["first_query_ms"] for s in samples), 3),
        "rss_delta_kb": min(s["rss_delta_kb"] for s in samples),
        "hash": samples[0]["hash"],
        "runs": repeats,
    }


def run_coldstart(scale: float, repeats: int) -> dict:
    from repro.dynamic.snapshot import save_snapshot
    from repro.store import write_store

    graph = dbpedia_like(scale=scale)
    tmp = tempfile.mkdtemp(prefix="repro-coldstart-")
    snap = os.path.join(tmp, "graph.kgs")
    store = os.path.join(tmp, "graph.rkgs2")
    save_snapshot(graph, snap)
    write_store(graph, store)
    results = {
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges,
                  "scale": scale},
        "files": {"snapshot_bytes": os.path.getsize(snap),
                  "store_bytes": os.path.getsize(store)},
        "snapshot": _measure("snapshot", snap, repeats),
        "mmap": _measure("mmap", store, repeats),
    }
    results["open_speedup"] = round(
        results["snapshot"]["open_ms"] / max(results["mmap"]["open_ms"],
                                             1e-9), 2)
    results["parity"] = results["snapshot"]["hash"] == results["mmap"]["hash"]
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced load; exit non-zero on gate failure")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    scale = args.scale or (SMOKE_SCALE if args.smoke else SCALE)
    repeats = args.repeats or (3 if args.smoke else REPEATS)

    results = run_coldstart(scale, repeats)
    rows = []
    for variant in ("snapshot", "mmap"):
        r = results[variant]
        rows.append([
            variant,
            f"{r['open_ms']:.1f} ms",
            f"{r['first_query_ms']:.1f} ms",
            f"{r['open_ms'] + r['first_query_ms']:.1f} ms",
            f"{r['rss_delta_kb'] / 1024:.1f} MB",
            r["hash"],
        ])
    print_table(
        f"Cold start, dbpedia scale {scale} "
        f"(|V|={results['graph']['nodes']}, best of {repeats} forked runs)",
        ["variant", "open", "first query", "total", "rss delta", "hash"],
        rows,
        save_as=None,
    )
    print(f"open speedup: {results['open_speedup']}x "
          f"(gate >= {MIN_SPEEDUP}x), parity: {results['parity']}")

    failures = []
    if not results["parity"]:
        failures.append("mmap top-k diverges from snapshot top-k")
    if results["open_speedup"] < MIN_SPEEDUP:
        failures.append(
            f"mmap open speedup {results['open_speedup']}x < {MIN_SPEEDUP}x")
    results["passed"] = not failures
    results["failures"] = failures
    if not args.smoke:
        RESULTS.write_text(json.dumps(results, indent=2, sort_keys=True)
                           + "\n")
        print(f"wrote {RESULTS}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("store coldstart smoke OK" if args.smoke
          else "store coldstart benchmark OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
