"""Figure 13(c,d) (Exp-2): star-query runtime vs query size (d=2, k=20).

Paper setup: star templates of 2..6 nodes, one workload per size.
Expected shape: BP and graphTA grow much faster with query size than
stark/stard ("exponential runtime growth of BP and graphTA, while stark
and stard are less sensitive").
"""

import pytest

from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_series,
    run_star_workload,
)
from repro.query import star_workload

ALGORITHMS = ("stark", "stard", "graphta", "bp")
SIZES = (2, 3, 4, 5, 6)
D = 2
K = 20
NUM_QUERIES = 6


def run_graph(dataset: str):
    graph = benchmark_graph(dataset)
    scorer = benchmark_scorer(graph)
    table = {}
    for size in SIZES:
        workload = star_workload(graph, NUM_QUERIES, seed=114, size=size)
        results = run_star_workload(scorer, workload, ALGORITHMS, K, d=D)
        for name, result in results.items():
            table.setdefault(name, []).append(result.avg_ms)
    return table


@pytest.mark.parametrize("dataset", ["dbpedia", "yago2"])
def test_fig13cd_runtime_vs_query_size(benchmark, dataset):
    table = benchmark.pedantic(run_graph, args=(dataset,), rounds=1,
                               iterations=1)
    print_series(
        f"Figure 13(c,d) -- runtime vs star size on {dataset}-like "
        f"(d={D}, k={K}, {NUM_QUERIES} queries/size, avg ms/query)",
        "query nodes",
        list(SIZES),
        [(name, [format_ms(v) for v in values])
         for name, values in table.items()],
        save_as="fig13cd_query_size",
    )
    stark, stard = table["stark"], table["stard"]
    graphta, bp = table["graphta"], table["bp"]
    # At the largest query size the baselines lose clearly.
    assert min(stark[-1], stard[-1]) < graphta[-1]
    assert min(stark[-1], stard[-1]) < bp[-1]
    # STAR is already competitive on single-edge queries (paper: stark is
    # 2x, stard 8x faster than graphTA even for 2-node queries).
    assert min(stark[0], stard[0]) < graphta[0]
