"""Figure 14(b) (Exp-3): starjoin runtime vs k per decomposition method.

Paper setup: DBpedia, d=1, per-method alpha fixed at its tuned value
(0.5 for Rand/SimSize, 0.3 for MaxDeg/SimTop, 0.9 for SimDec); k varied.
Expected shape: runtime grows with k; the feature-based decompositions
(SimSize/SimTop/SimDec) beat Rand/MaxDeg, SimDec best (paper: up to 45%
over Rand).
"""

from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_series,
    run_general_workload,
)
from repro.query import complex_workload

#: Tuned alpha per method (Section VII, Exp-3).
TUNED_ALPHA = {
    "rand": 0.5, "maxdeg": 0.3, "simsize": 0.5, "simtop": 0.3, "simdec": 0.9,
}
K_VALUES = (1, 10, 20, 50)
NUM_QUERIES = 6


def run_experiment():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = complex_workload(graph, NUM_QUERIES, shape=(4, 5), seed=142)
    table = {}
    for method, alpha in TUNED_ALPHA.items():
        for k in K_VALUES:
            result = run_general_workload(
                scorer, workload, k=k, alpha=alpha, method=method
            )
            table.setdefault(method, []).append(result.avg_ms)
    return table


def test_fig14b_runtime_vs_k(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        f"Figure 14(b) -- starjoin runtime vs k on dbpedia-like "
        f"(tuned alpha, Q(4,5) x {NUM_QUERIES}, avg ms/query)",
        "k",
        list(K_VALUES),
        [(m, [format_ms(v) for v in values]) for m, values in table.items()],
        save_as="fig14b_vary_k",
    )
    # Runtime grows (weakly) with k for every method.
    for values in table.values():
        assert values[-1] >= values[0] * 0.7
    # The best feature-based decomposition beats the worst baseline at
    # the largest k (the paper's ranking, asserted conservatively).
    best_sim = min(table[m][-1] for m in ("simsize", "simtop", "simdec"))
    worst_baseline = max(table[m][-1] for m in ("rand", "maxdeg"))
    assert best_sim <= worst_baseline
