"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md Section 5) and prints it; reports are also appended under
``benchmarks/results/``.
"""

import os
import shutil

import pytest

from repro.eval.report import RESULTS_DIR


def pytest_sessionstart(session):
    # Start every benchmark session with a clean results directory, so
    # benchmarks/results/ reflects exactly one run.
    if os.path.isdir(RESULTS_DIR):
        shutil.rmtree(RESULTS_DIR)
