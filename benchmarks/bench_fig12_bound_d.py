"""Figure 12 (Exp-1): star-query runtime vs search bound d.

Paper setup: 1,000 star queries, k=20, d varied; algorithms stark, stard,
graphTA, BP; datasets DBpedia (a) and YAGO2 (b); log-scale runtime.
Expected shape: stark == stard at d=1; for d >= 2 stard wins and the gap
to stark/graphTA/BP widens with d (their d-hop exploration explodes).

Scaled setup: the same grid over the scaled datasets with a smaller
workload; shapes, not absolute times, are asserted.
"""

import pytest

from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_series,
    run_star_workload,
)
from repro.query import star_workload

ALGORITHMS = ("stark", "stard", "graphta", "bp")
D_VALUES = (1, 2, 3)
K = 20
NUM_QUERIES = 10


def run_graph(dataset: str):
    graph = benchmark_graph(dataset)
    scorer = benchmark_scorer(graph)
    workload = star_workload(graph, NUM_QUERIES, seed=112)
    # Warm-up: populate the shared one-time structures (descriptor cache,
    # corpus statistics) so the first measured algorithm is not charged
    # for them; per-query score memos are still cleared per measurement.
    run_star_workload(scorer, workload, ("stark",), K, d=1)
    table = {}
    for d in D_VALUES:
        results = run_star_workload(scorer, workload, ALGORITHMS, K, d=d)
        for name, result in results.items():
            table.setdefault(name, []).append(result.avg_ms)
    return table


@pytest.mark.parametrize("dataset", ["dbpedia", "yago2"])
def test_fig12_runtime_vs_d(benchmark, dataset):
    table = benchmark.pedantic(run_graph, args=(dataset,), rounds=1,
                               iterations=1)
    print_series(
        f"Figure 12 -- runtime vs d on {dataset}-like "
        f"(k={K}, {NUM_QUERIES} star queries, avg ms/query)",
        "d",
        list(D_VALUES),
        [(name, [format_ms(v) for v in values])
         for name, values in table.items()],
        save_as="fig12_bound_d",
    )
    from repro.eval.charts import ascii_chart
    from repro.eval.report import save_report

    chart = ascii_chart(
        f"Figure 12 shape ({dataset}-like, log scale)",
        list(D_VALUES), list(table.items()),
    )
    print(chart)
    save_report("fig12_bound_d", chart)
    stark, stard = table["stark"], table["stard"]
    graphta, bp = table["graphta"], table["bp"]
    # d=1: stard degrades to stark (same code path, same runtime class;
    # the absolute tolerance absorbs millisecond-scale scheduler noise).
    assert stard[0] == pytest.approx(stark[0], rel=0.5, abs=5.0)
    # STAR beats graphTA at every d (Exp-1's headline).
    for i in range(len(D_VALUES)):
        assert min(stark[i], stard[i]) < graphta[i]
    # At the largest d, stard beats eager stark and both baselines
    # (the message-passing payoff).
    assert stard[-1] < stark[-1]
    assert stard[-1] < bp[-1]
