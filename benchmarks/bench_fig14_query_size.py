"""Figure 14(c) (Exp-3): starjoin runtime vs query size Q(3,3)..Q(5,6).

Paper setup: DBpedia, workloads of growing shape; larger queries
decompose into more stars and need more expensive multi-way joins.
Expected shape: runtime grows from Q(3,3) to Q(5,6) for every method;
SimDec shows the best overall efficiency.
"""

from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_series,
    run_general_workload,
)
from repro.query import complex_workload

from bench_fig14_vary_k import TUNED_ALPHA

SHAPES = ((3, 3), (4, 4), (4, 5), (5, 6))
K = 20
NUM_QUERIES = 5


def run_experiment():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workloads = {
        shape: complex_workload(graph, NUM_QUERIES, shape=shape, seed=143)
        for shape in SHAPES
    }
    table = {}
    for method, alpha in TUNED_ALPHA.items():
        for shape in SHAPES:
            result = run_general_workload(
                scorer, workloads[shape], k=K, alpha=alpha, method=method
            )
            table.setdefault(method, []).append(result.avg_ms)
    return table


def test_fig14c_runtime_vs_query_size(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        f"Figure 14(c) -- starjoin runtime vs query shape on dbpedia-like "
        f"(k={K}, {NUM_QUERIES} queries/shape, avg ms/query)",
        "shape",
        [f"Q{s}" for s in SHAPES],
        [(m, [format_ms(v) for v in values]) for m, values in table.items()],
        save_as="fig14c_query_size",
    )
    # The largest shape costs more than the smallest for every method
    # (generous slack: small workloads are noisy, the trend is what the
    # paper reports).
    for method, values in table.items():
        assert values[-1] >= values[0] * 0.5, method
    # Aggregate over shapes: the feature-based decompositions are
    # competitive with the baselines.
    totals = {m: sum(v) for m, v in table.items()}
    assert min(totals[m] for m in ("simsize", "simtop", "simdec")) <= \
        max(totals["rand"], totals["maxdeg"])
