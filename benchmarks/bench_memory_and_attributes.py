"""Section VII prose claims: memory footprint and the attribute tier.

Two statements the paper makes outside its figures, measured here:

* "The memory consumed by our algorithms is negligible, in comparison
  with the memory used to store the graph data" -- stard's dominant
  auxiliary structure is the per-leaf message table, O(d |V|); we count
  its entries and compare an estimate of its bytes to the graph's.
* "The time spent on fetching entities and relations from MongoDB is
  around 5-10% of total query processing time" -- we simulate the
  attribute tier with :class:`repro.graph.AttributeStore` at a fixed
  per-fetch latency and report the share of end-to-end time spent
  fetching the result matches' attributes.
"""

import time

from repro.core import StarDSearch
from repro.eval import benchmark_graph, benchmark_scorer, print_table
from repro.graph import AttributeStore, summarize
from repro.query import StarQuery, star_workload

K = 20
NUM_QUERIES = 8
#: Simulated per-fetch latency of the attribute tier (an in-memory
#: MongoDB hit is ~0.1 ms at the paper's scale).
FETCH_LATENCY_S = 0.0001


def run_experiment():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = star_workload(graph, NUM_QUERIES, seed=191)
    store = AttributeStore(graph, latency=FETCH_LATENCY_S)

    search_time = 0.0
    fetch_time = 0.0
    peak_messages = 0
    for query in workload:
        scorer.clear_cache()
        star = StarQuery.from_query(query)
        matcher = StarDSearch(scorer, d=2)
        start = time.perf_counter()
        matches = matcher.search(star, K)
        search_time += time.perf_counter() - start
        peak_messages = max(peak_messages, matcher.messages_propagated)
        # Fetch the attribute payloads of the returned entities (what a
        # client rendering results would do).
        start = time.perf_counter()
        for match in matches:
            for node in match.assignment.values():
                store.node_attrs(node)
        fetch_time += time.perf_counter() - start

    # ~48 bytes per message-table entry (hop key + Top2 floats/ints).
    message_bytes = peak_messages * 48
    graph_bytes = summarize(graph).est_size_mb * 1024 * 1024
    fetch_share = fetch_time / (search_time + fetch_time)
    return {
        "graph_mb": graph_bytes / 1e6,
        "peak_message_entries": peak_messages,
        "message_mb": message_bytes / 1e6,
        "memory_ratio": message_bytes / graph_bytes,
        "fetch_share": fetch_share,
        "fetches": store.total_fetches,
    }


def test_memory_and_attribute_tier(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "Section VII prose -- auxiliary memory and attribute-tier share",
        ["quantity", "value"],
        [
            ["graph footprint", f"{result['graph_mb']:.2f} MB"],
            ["peak stard message entries", result["peak_message_entries"]],
            ["peak message memory", f"{result['message_mb']:.3f} MB"],
            ["messages / graph ratio", f"{result['memory_ratio']:.2%}"],
            ["attribute fetches", result["fetches"]],
            ["attribute-tier time share", f"{result['fetch_share']:.1%}"],
        ],
        save_as="memory_and_attributes",
    )
    # "Negligible": the d |V| message tables stay well under the graph.
    assert result["memory_ratio"] < 0.5
    # Attribute fetches stay a small fraction of end-to-end time (the
    # paper reports 5-10%; we only assert the same order of magnitude).
    assert result["fetch_share"] < 0.25
