"""Runtime-budget benchmarks: zero overhead + anytime deadline latency.

Two assertion-level checks for the budget/anytime layer:

1. **Zero overhead**: an unbudgeted search takes the exact seed code path
   (``budget is None`` short-circuits every checkpoint), and a generous
   anytime budget must return byte-identical rankings -- the budget layer
   may never change *what* is returned, only *when* the search stops.
2. **Deadline acceptance**: on the largest generator graph
   (``freebase_like(scale=1.0)``, |V| = 8000), a 1 ms deadline must come
   back within ~50 ms wall clock with ``completed=False`` and a non-empty
   best-so-far answer whenever an exact match exists (the anytime
   minimum-progress guarantee, cold caches).
"""

import time

from repro.core import StarKSearch
from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    print_table,
)
from repro.graph import freebase_like
from repro.query import StarQuery, star_workload
from repro.runtime import Budget
from repro.similarity import ScoringFunction

K = 10
NUM_QUERIES = 10
DEADLINE_MS = 1.0
#: Wall-clock ceiling for a 1 ms-deadline query: deadline + the bounded
#: minimum-progress floor + the work-capped rescue, with slack for CI.
LATENCY_CEILING_MS = 75.0


def run_zero_overhead():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    workload = [
        StarQuery.from_query(q)
        for q in star_workload(graph, NUM_QUERIES, seed=171)
    ]

    scorer.clear_cache()
    start = time.perf_counter()
    plain = [StarKSearch(scorer).search(star, K) for star in workload]
    plain_s = time.perf_counter() - start

    scorer.clear_cache()
    start = time.perf_counter()
    budgeted = []
    for star in workload:
        matcher = StarKSearch(scorer)
        budget = Budget(deadline_ms=600_000, max_nodes=10_000_000,
                        anytime=True)
        budgeted.append(matcher.search(star, K, budget=budget))
        assert matcher.last_report.completed, star
    budgeted_s = time.perf_counter() - start

    # The budget layer must not change the answer.
    for want, got in zip(plain, budgeted):
        assert [m.score for m in want] == [m.score for m in got]
        assert [m.assignment for m in want] == [m.assignment for m in got]
    return [
        ["unbudgeted (seed path)", format_ms(plain_s / NUM_QUERIES,
                                             is_seconds=True)],
        ["generous anytime budget", format_ms(budgeted_s / NUM_QUERIES,
                                              is_seconds=True)],
    ]


def run_deadline_acceptance():
    graph = freebase_like(scale=1.0, seed=7)
    scorer = ScoringFunction(graph)
    workload = [
        StarQuery.from_query(q)
        for q in star_workload(graph, NUM_QUERIES, seed=23)
    ]
    exact_nonempty = []
    for star in workload:
        scorer.clear_cache()
        exact_nonempty.append(bool(StarKSearch(scorer).search(star, K)))

    rows = []
    worst_ms = 0.0
    for i, star in enumerate(workload):
        scorer.clear_cache()  # cold caches: the adversarial case
        matcher = StarKSearch(scorer)
        budget = Budget(deadline_ms=DEADLINE_MS, anytime=True)
        start = time.perf_counter()
        got = matcher.search(star, K, budget=budget)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        worst_ms = max(worst_ms, elapsed_ms)
        report = matcher.last_report
        assert elapsed_ms <= LATENCY_CEILING_MS, (i, elapsed_ms)
        assert not report.completed, i
        if exact_nonempty[i]:
            assert got, f"query {i}: empty best-so-far despite exact match"
        rows.append([f"q{i}", format_ms(elapsed_ms), len(got),
                     report.reason])
    rows.append(["worst", format_ms(worst_ms), "", ""])
    return rows


def test_budget_zero_overhead(benchmark):
    rows = benchmark.pedantic(run_zero_overhead, rounds=1, iterations=1)
    print_table(
        "Runtime budget -- zero overhead (unbudgeted == generous budget)",
        ["variant", "avg runtime"],
        rows,
        save_as="runtime_budget_overhead",
    )


def test_budget_deadline_acceptance(benchmark):
    rows = benchmark.pedantic(run_deadline_acceptance, rounds=1, iterations=1)
    print_table(
        f"Runtime budget -- {DEADLINE_MS} ms deadline on freebase "
        "(cold caches)",
        ["query", "latency", "matches", "reason"],
        rows,
        save_as="runtime_budget_deadline",
    )
