"""Figure 11: long-tail distribution of star-match scores.

The paper motivates the SimDec decomposition feature with the
observation that "many real-world star queries share the similar
distribution of the match scores with a long-tail effect".  This bench
streams star matches for a workload and reports the score-vs-rank curve
(normalized): the head must decay steeply and the tail flatten.
"""

import itertools

from repro.core import StarKSearch
from repro.eval import benchmark_graph, benchmark_scorer, print_series
from repro.query import StarQuery, star_workload

RANK_POINTS = [1, 2, 5, 10, 20, 50, 100, 200]


def run_experiment():
    graph = benchmark_graph("dbpedia")
    scorer = benchmark_scorer(graph)
    curves = []
    for query in star_workload(graph, 12, seed=111):
        star = StarQuery.from_query(query)
        matches = list(itertools.islice(
            StarKSearch(scorer).stream(star), max(RANK_POINTS)
        ))
        if len(matches) < 20:
            continue
        top = matches[0].score
        curve = []
        for rank in RANK_POINTS:
            # Censor short lists at their final score: each per-query
            # curve stays monotone, so the average does too.
            idx = min(rank, len(matches)) - 1
            curve.append(matches[idx].score / top)
        curves.append(curve)
    averaged = [
        sum(c[i] for c in curves) / len(curves)
        for i in range(len(RANK_POINTS))
    ]
    return averaged, len(curves)


def test_fig11_long_tail(benchmark):
    averaged, num_queries = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_series(
        f"Figure 11 -- normalized match score vs rank "
        f"(avg over {num_queries} star queries)",
        "rank",
        RANK_POINTS,
        [("score / top-1 score", [f"{v:.3f}" for v in averaged])],
        save_as="fig11_score_distribution",
    )
    assert num_queries >= 5
    # Long tail, defined by a decreasing decay *rate*: scores fall
    # monotonically, and the per-rank decay in the head (ranks 1-50) is
    # several times steeper than in the tail (ranks 50-200).
    for a, b in zip(averaged, averaged[1:]):
        assert b <= a + 1e-9
    head_rate = (averaged[0] - averaged[5]) / (RANK_POINTS[5] - RANK_POINTS[0])
    tail_rate = (averaged[5] - averaged[7]) / (RANK_POINTS[7] - RANK_POINTS[5])
    assert head_rate > 1.5 * tail_rate
    # And the spread is real: rank-200 matches score well below top-1.
    assert averaged[-1] < 0.97
