"""Performance-layer benchmarks: warm-cache speedup + parallel scaling.

Assertion-level checks for the ``repro.perf`` subsystem:

1. **Warm-cache speedup**: serving a template workload a second time with
   the cross-query :class:`~repro.perf.CandidateCache` attached must be
   at least ``MIN_WARM_SPEEDUP`` times faster than the cold uncached
   serve -- and the result hash (every assignment and score of every
   query) must be byte-identical.  Online candidate scoring dominates
   per-query latency, so hits that skip it entirely dominate the win.
2. **Parallel scaling**: ``search_many`` over 1/2/4 fork workers, same
   result hash for every worker count.  Measured wall-clock is recorded
   together with ``os.cpu_count()`` -- scaling is hardware-bound and the
   numbers are only meaningful relative to the cores of the box that
   produced them (a single-core container cannot beat 1x).
3. **Observability overhead**: the same cached workload served with the
   span tracer *enabled* must return the identical result hash, must
   report obs cache counters exactly equal to ``CandidateCache.stats``,
   and must stay within ``MAX_OBS_OVERHEAD`` (5%) wall-time of the
   untraced serve (min over ``OBS_REPEATS`` repeats, to damp scheduler
   noise).

Smoke mode (CI)::

    python benchmarks/bench_perf_cache.py --smoke

runs a reduced load and exits non-zero if the warm-cache speedup falls
below ``MIN_WARM_SPEEDUP`` or caching/parallelism changes any result
hash.
"""

import argparse
import hashlib
import os
import sys
import time

from repro import obs
from repro.eval import benchmark_graph, format_ms, print_table
from repro.perf import CandidateCache, fork_available, search_many
from repro.query import star_workload

K = 10
NUM_QUERIES = 30
#: The CI gate: warm-cache serve must beat the cold uncached serve by
#: at least this factor (typical measured values are far higher).
MIN_WARM_SPEEDUP = 1.5
WORKER_COUNTS = (1, 2, 4)
#: The observability gate: tracing-enabled wall time may exceed the
#: untraced wall time by at most this fraction.
MAX_OBS_OVERHEAD = 0.05
#: Repeats per mode for the overhead measurement (min damps noise).
OBS_REPEATS = 3


def result_hash(batch) -> str:
    """Order-sensitive digest of every (assignment, score) of the batch."""
    payload = repr(batch.result_keys()).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def run_cache_speedup(num_queries: int = NUM_QUERIES):
    """Cold uncached vs cold cached vs warm cached, plus parity hashes."""
    graph = benchmark_graph("dbpedia")
    workload = star_workload(graph, num_queries, seed=171)

    start = time.perf_counter()
    uncached = search_many(graph, workload, K)
    uncached_s = time.perf_counter() - start

    cache = CandidateCache()
    start = time.perf_counter()
    cold = search_many(graph, workload, K, cache=cache)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = search_many(graph, workload, K, cache=cache)
    warm_s = time.perf_counter() - start

    baseline = result_hash(uncached)
    hashes_equal = (result_hash(cold) == baseline
                    and result_hash(warm) == baseline)
    speedup = uncached_s / warm_s if warm_s > 0 else float("inf")
    rows = [
        ["uncached (seed path)", format_ms(uncached_s / num_queries,
                                           is_seconds=True),
         "", baseline],
        ["cold cache", format_ms(cold_s / num_queries, is_seconds=True),
         f"{cold.cache_stats.hit_rate:.0%} hits", result_hash(cold)],
        ["warm cache", format_ms(warm_s / num_queries, is_seconds=True),
         f"{warm.cache_stats.hit_rate:.0%} hits", result_hash(warm)],
        ["warm speedup", f"{speedup:.1f}x",
         f"gate >= {MIN_WARM_SPEEDUP}x", ""],
    ]
    return rows, speedup, hashes_equal


def run_parallel_scaling(num_queries: int = NUM_QUERIES):
    """search_many wall-clock across worker counts (fork backend)."""
    graph = benchmark_graph("dbpedia")
    workload = star_workload(graph, num_queries, seed=191)
    backend = "fork" if fork_available() else "thread"

    rows = []
    baseline_hash = None
    baseline_s = None
    hashes_equal = True
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        batch = search_many(graph, workload, K, workers=workers,
                            backend=backend, cache=(workers > 1))
        elapsed = time.perf_counter() - start
        digest = result_hash(batch)
        if baseline_hash is None:
            baseline_hash, baseline_s = digest, elapsed
        hashes_equal = hashes_equal and digest == baseline_hash
        rows.append([
            f"{batch.backend} x{workers}", format_ms(elapsed, is_seconds=True),
            f"{batch.queries_per_s:.1f} q/s",
            f"{baseline_s / elapsed:.2f}x", digest,
        ])
    rows.append([f"cpu_count={os.cpu_count()}", "", "", "", ""])
    return rows, hashes_equal


def run_obs_overhead(num_queries: int = NUM_QUERIES):
    """Traced vs untraced serve: parity hashes, counter parity, overhead."""
    graph = benchmark_graph("dbpedia")
    workload = star_workload(graph, num_queries, seed=171)

    def serve(traced: bool):
        cache = CandidateCache()
        if traced:
            with obs.capture() as tracer:
                start = time.perf_counter()
                batch = search_many(graph, workload, K, cache=cache)
                elapsed = time.perf_counter() - start
            return elapsed, batch, cache, tracer
        start = time.perf_counter()
        batch = search_many(graph, workload, K, cache=cache)
        elapsed = time.perf_counter() - start
        return elapsed, batch, cache, None

    plain_times, traced_times = [], []
    plain_batch = traced_batch = traced_cache = tracer = None
    for _ in range(OBS_REPEATS):  # alternate modes to share thermal noise
        elapsed, plain_batch, _cache, _none = serve(False)
        plain_times.append(elapsed)
        elapsed, traced_batch, traced_cache, tracer = serve(True)
        traced_times.append(elapsed)

    hashes_equal = result_hash(plain_batch) == result_hash(traced_batch)
    counters = tracer.registry.as_dict()["counters"]
    stats = traced_cache.stats
    counters_equal = (
        counters.get("cache.hits", 0) == stats.hits
        and counters.get("cache.misses", 0) == stats.misses
        and counters.get("cache.inserts", 0) == stats.inserts
        and counters.get("cache.evictions", 0) == stats.evictions
    )
    plain_s, traced_s = min(plain_times), min(traced_times)
    overhead = traced_s / plain_s - 1.0 if plain_s > 0 else 0.0
    rows = [
        ["untraced", format_ms(plain_s / num_queries, is_seconds=True),
         "", result_hash(plain_batch)],
        ["traced", format_ms(traced_s / num_queries, is_seconds=True),
         f"{tracer.span_count} spans", result_hash(traced_batch)],
        ["overhead", f"{overhead:+.1%}",
         f"gate <= {MAX_OBS_OVERHEAD:.0%}", ""],
        ["counter parity", "ok" if counters_equal else "MISMATCH",
         f"{stats.hits} hits / {stats.misses} misses", ""],
    ]
    return rows, overhead, hashes_equal, counters_equal


def test_perf_cache_speedup(benchmark):
    rows, speedup, hashes_equal = benchmark.pedantic(
        run_cache_speedup, rounds=1, iterations=1
    )
    assert hashes_equal, "caching changed a result hash"
    assert speedup >= MIN_WARM_SPEEDUP, f"warm speedup {speedup:.2f}x"
    print_table(
        "Cross-query candidate cache -- dbpedia template workload "
        f"({NUM_QUERIES} queries, k={K})",
        ["variant", "avg / query", "cache", "result hash"],
        rows,
        save_as="perf_cache",
    )


def test_perf_parallel_scaling(benchmark):
    rows, hashes_equal = benchmark.pedantic(
        run_parallel_scaling, rounds=1, iterations=1
    )
    assert hashes_equal, "parallel execution changed a result hash"
    print_table(
        "Parallel query execution -- search_many worker scaling "
        f"({NUM_QUERIES} queries, k={K}; speedup is hardware-bound)",
        ["pool", "wall clock", "throughput", "speedup", "result hash"],
        rows,
        save_as="perf_parallel",
    )


def test_perf_obs_overhead(benchmark):
    rows, overhead, hashes_equal, counters_equal = benchmark.pedantic(
        run_obs_overhead, rounds=1, iterations=1
    )
    assert hashes_equal, "tracing changed a result hash"
    assert counters_equal, "obs cache counters diverge from CacheStats"
    assert overhead <= MAX_OBS_OVERHEAD, f"obs overhead {overhead:+.1%}"
    print_table(
        "Observability overhead -- traced vs untraced cached serve "
        f"({NUM_QUERIES} queries, k={K}, min of {OBS_REPEATS})",
        ["variant", "avg / query", "detail", "result hash"],
        rows,
        save_as="perf_obs_overhead",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced load; exit non-zero on gate failure")
    parser.add_argument("--queries", type=int, default=None)
    args = parser.parse_args(argv)
    num_queries = args.queries or (10 if args.smoke else NUM_QUERIES)

    rows, speedup, hashes_equal = run_cache_speedup(num_queries)
    print_table(
        f"Cross-query candidate cache ({num_queries} queries, k={K})",
        ["variant", "avg / query", "cache", "result hash"],
        rows,
        save_as=None if args.smoke else "perf_cache",
    )
    failures = []
    if not hashes_equal:
        failures.append("cache changed a result hash")
    if speedup < MIN_WARM_SPEEDUP:
        failures.append(
            f"warm-cache speedup {speedup:.2f}x < {MIN_WARM_SPEEDUP}x"
        )

    scaling_rows, scaling_equal = run_parallel_scaling(num_queries)
    print_table(
        f"Parallel query execution ({num_queries} queries, k={K}; "
        "speedup is hardware-bound)",
        ["pool", "wall clock", "throughput", "speedup", "result hash"],
        scaling_rows,
        save_as=None if args.smoke else "perf_parallel",
    )
    if not scaling_equal:
        failures.append("parallel execution changed a result hash")

    obs_rows, overhead, obs_hashes_equal, counters_equal = run_obs_overhead(
        num_queries
    )
    print_table(
        f"Observability overhead ({num_queries} queries, k={K}, "
        f"min of {OBS_REPEATS})",
        ["variant", "avg / query", "detail", "result hash"],
        obs_rows,
        save_as=None if args.smoke else "perf_obs_overhead",
    )
    if not obs_hashes_equal:
        failures.append("tracing changed a result hash")
    if not counters_equal:
        failures.append("obs cache counters diverge from CacheStats")
    if overhead > MAX_OBS_OVERHEAD:
        failures.append(
            f"obs overhead {overhead:+.1%} > {MAX_OBS_OVERHEAD:.0%}"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf smoke OK" if args.smoke else "perf benchmark OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
