"""Serving-layer overload benchmark: goodput + latency across load.

Boots the async query service on a generator graph and drives it with
a mixed-priority open-loop stream at 0.5x / 1x / 2x / 4x its measured
capacity, reporting per-class goodput, degraded/shed fractions and
p50/p99 latency.  The figure of merit is the degrade-before-shed story:
past 1x, goodput should *plateau* (not collapse), bronze should shed
first, and gold p99 should stay inside its SLO deadline.

``--smoke`` runs the CI gate instead: the chaos acceptance scenario
(2x load, 5% injected faults, one forced worker crash, a breaker
open/reclose cycle) plus a single 2x sweep point whose gates mirror
the acceptance criteria.  Exit code 1 on any broken gate.

Results land in ``benchmarks/results/serve_overload.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from random import Random

from repro.graph import dbpedia_like
from repro.runtime import SLO_CLASSES
from repro.serve import ChaosConfig, ServeApp, ServerHandle, format_result
from repro.serve import run_chaos
from repro.serve.chaos import PRIORITY_MIX, _LoadGenerator, _percentile
from repro.serve.protocol import QueryRequest

QUERIES = [
    "(?m:person) -[?]- (?f:film)",
    "(?m:film) -[?]- (?p:place)",
    "(?m:person) -[?]- (?o:organisation)",
]
K = 5
WORKERS = 2
MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)
REQUESTS_PER_POINT = 80
CALIBRATION_REQUESTS = 8
MAX_RATE_RPS = 150.0
RESULTS = Path(__file__).parent / "results" / "serve_overload.json"


def build_stream(n: int, seed: int) -> list:
    rng = Random(seed)
    names = [name for name, _ in PRIORITY_MIX]
    weights = [w for _, w in PRIORITY_MIX]
    return [QueryRequest.from_dict({
        "query": rng.choice(QUERIES),
        "k": K,
        "request_id": f"load-{seed}-{i}",
        "tenant": rng.choice(("acme", "globex", "initech")),
        "priority": rng.choices(names, weights=weights)[0],
    }) for i in range(n)]


def measure_capacity(gen: _LoadGenerator) -> float:
    outcomes = gen.run_serial(build_stream(CALIBRATION_REQUESTS, seed=99))
    answered = [o.latency_ms for o in outcomes
                if o.response is not None and o.response.answered]
    if not answered:
        raise SystemExit("calibration failed: no request answered")
    mean_s = (sum(answered) / len(answered)) / 1000.0
    return WORKERS / max(mean_s, 1e-3)


def sweep_point(gen: _LoadGenerator, multiplier: float,
                capacity_rps: float, seed: int) -> dict:
    rate = min(max(capacity_rps * multiplier, 2.0), MAX_RATE_RPS)
    stream = build_stream(REQUESTS_PER_POINT, seed=seed)
    start = time.monotonic()
    outcomes = gen.run_paced(stream, rate)
    elapsed_s = max(time.monotonic() - start, 1e-6)

    by_status: dict = {}
    per_class: dict = {}
    answered = 0
    for outcome in outcomes:
        status = (outcome.response.status if outcome.response
                  else "send_error")
        by_status[status] = by_status.get(status, 0) + 1
        stats = per_class.setdefault(outcome.request.priority, {
            "sent": 0, "answered": 0, "shed": 0, "latency_ms": []})
        stats["sent"] += 1
        if outcome.response is not None and outcome.response.answered:
            answered += 1
            stats["answered"] += 1
            stats["latency_ms"].append(outcome.latency_ms)
        elif status == "shed":
            stats["shed"] += 1

    classes = {}
    for name, stats in sorted(per_class.items()):
        lat = stats.pop("latency_ms")
        classes[name] = {
            **stats,
            "p50_ms": round(_percentile(lat, 50.0), 2),
            "p99_ms": round(_percentile(lat, 99.0), 2),
        }
    return {
        "multiplier": multiplier,
        "offered_rps": round(rate, 2),
        "goodput_rps": round(answered / elapsed_s, 2),
        "responses_by_status": by_status,
        "classes": classes,
    }


def smoke_gates(point: dict) -> list:
    """CI gates on the 2x sweep point (mirrors the chaos criteria)."""
    failures = []
    gold = point["classes"].get("gold")
    if gold is None:
        failures.append("no gold traffic in the 2x point")
    else:
        if gold["shed"] > 0:
            failures.append(f"{gold['shed']} gold request(s) shed at 2x")
        if gold["answered"] < gold["sent"]:
            failures.append(
                f"only {gold['answered']}/{gold['sent']} gold answered")
        deadline = SLO_CLASSES["gold"].deadline_ms
        if gold["p99_ms"] > deadline:
            failures.append(f"gold p99 {gold['p99_ms']} ms > SLO "
                            f"{deadline:.0f} ms")
    if point["responses_by_status"].get("send_error", 0):
        failures.append("transport-level send errors at 2x")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: chaos acceptance + 2x gates only")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="generator graph scale (default 0.2)")
    args = parser.parse_args()

    graph = dbpedia_like(scale=args.scale, seed=7)
    print(f"serve overload bench: graph |V|={graph.num_nodes} "
          f"|E|={graph.num_edges}, {WORKERS} workers")

    app = ServeApp(graph, workers=WORKERS, backend="auto",
                   breaker_cooldown_s=0.5)
    results: dict = {"graph": {"nodes": graph.num_nodes,
                               "edges": graph.num_edges},
                     "workers": WORKERS, "smoke": args.smoke}
    failures: list = []
    with ServerHandle(app) as handle:
        host, port = handle.address

        chaos = run_chaos(host, port, ChaosConfig(
            queries=QUERIES, k=K,
            n_requests=60 if args.smoke else 120,
            breaker_cooldown_s=0.5,
            max_rate=MAX_RATE_RPS,
            seed=0,
        ))
        print(format_result(chaos))
        results["chaos"] = chaos.summary()
        if not chaos.passed:
            failures.extend(f"chaos: {f}" for f in chaos.failures)

        gen = _LoadGenerator(host, port, threads=16)
        try:
            capacity = measure_capacity(gen)
            results["capacity_rps"] = round(capacity, 2)
            print(f"measured capacity ~{capacity:.1f} rps")

            multipliers = (2.0,) if args.smoke else MULTIPLIERS
            results["sweep"] = []
            for i, multiplier in enumerate(multipliers):
                point = sweep_point(gen, multiplier, capacity, seed=i)
                results["sweep"].append(point)
                gold = point["classes"].get("gold", {})
                print(f"  {multiplier:>4}x: "
                      f"offered {point['offered_rps']:>7.1f} rps, "
                      f"goodput {point['goodput_rps']:>6.1f} rps, "
                      f"statuses {point['responses_by_status']}, "
                      f"gold p99 {gold.get('p99_ms', 0):.0f} ms")
                if multiplier == 2.0:
                    failures.extend(smoke_gates(point))
        finally:
            gen.close()

    results["passed"] = not failures
    results["failures"] = failures
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"results -> {RESULTS}")

    if failures:
        print(f"FAIL: {len(failures)} gate(s) broken")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("PASS: all serving gates held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
