"""Dynamic-update benchmark: warm-cache hit-rate retention under mutation.

The fine-grained invalidation in :mod:`repro.perf.cache` keys survival on
the delta journal: a cached candidate list stays valid after a mutation
unless the mutation touches the entry's node footprint, its query tokens,
its type closure, or the graph-level statistics.  This benchmark measures
the practical payoff -- after ``NUM_MUTATIONS`` edge inserts chosen to be
disjoint from every cached entry's footprint, a warm serve of the same
workload should still hit the cache instead of recomputing from scratch.

Stages (table row per stage):

1. **cold serve**: fills the cache (0% hits by construction).
2. **warm serve**: repeat of the same workload; the baseline hit rate.
3. **mutate**: ``NUM_MUTATIONS`` disjoint ``add_edge`` operations chosen
   by :func:`repro.eval.disjoint_edge_stream` (degree-capped so the
   max-degree normalizer -- and hence global statistics -- cannot move).
4. **post-mutation warm serve**: same workload again on the mutated
   graph; entries revalidate against the delta journal.

Gates (CI, ``--smoke``):

* post-mutation hit rate >= ``MIN_RETENTION`` x the baseline warm hit
  rate, and strictly greater than zero;
* the post-mutation cached serve is hash-identical to an uncached serve
  on the same mutated graph (fine-grained survival never changes
  results).
"""

import argparse
import hashlib
import sys
import time

from repro.dynamic import apply_operations
from repro.eval import disjoint_edge_stream, format_ms, print_table
from repro.graph.generators import dbpedia_like
from repro.perf import CandidateCache, search_many
from repro.query import star_workload

K = 10
NUM_QUERIES = 30
#: Unrelated edge inserts applied between the warm serves.
NUM_MUTATIONS = 100
#: The CI gate: the post-mutation warm hit rate must retain at least
#: this fraction of the baseline warm hit rate.
MIN_RETENTION = 0.5


def result_hash(batch) -> str:
    """Order-sensitive digest of every (assignment, score) of the batch."""
    payload = repr(batch.result_keys()).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _cache_footprint(cache):
    """Union of every entry's dependent-node set (for disjoint streams)."""
    footprint = set()
    for entry in cache._data.values():
        if entry.deps:
            footprint.update(entry.deps[0])
    return frozenset(footprint)


def run_retention(num_queries: int = NUM_QUERIES,
                  num_mutations: int = NUM_MUTATIONS):
    """Serve, mutate disjointly, serve again; report hit-rate retention."""
    graph = dbpedia_like(scale=0.35, seed=7)
    workload = star_workload(graph, num_queries, seed=211)
    cache = CandidateCache()

    start = time.perf_counter()
    search_many(graph, workload, K, cache=cache)
    cold_s = time.perf_counter() - start

    before = cache.stats.as_dict()
    start = time.perf_counter()
    warm = search_many(graph, workload, K, cache=cache)
    warm_s = time.perf_counter() - start
    after = cache.stats.as_dict()
    lookups = (after["hits"] - before["hits"]
               + after["misses"] - before["misses"])
    baseline_rate = (after["hits"] - before["hits"]) / lookups

    stream = disjoint_edge_stream(
        graph, num_mutations, avoid=_cache_footprint(cache),
        relation="unrelated_to", seed=17,
    )
    applied = apply_operations(graph, stream)

    before = cache.stats.as_dict()
    start = time.perf_counter()
    post = search_many(graph, workload, K, cache=cache)
    post_s = time.perf_counter() - start
    after = cache.stats.as_dict()
    lookups = (after["hits"] - before["hits"]
               + after["misses"] - before["misses"])
    post_rate = (after["hits"] - before["hits"]) / lookups
    survivals = after["survivals"] - before["survivals"]
    invalidations = after["invalidations"] - before["invalidations"]

    # Correctness anchor: an uncached serve on the mutated graph.
    uncached = search_many(graph, workload, K)
    hashes_equal = result_hash(post) == result_hash(uncached)
    retention = post_rate / baseline_rate if baseline_rate > 0 else 0.0

    rows = [
        ["cold serve", format_ms(cold_s / num_queries, is_seconds=True),
         "fills cache", result_hash(warm)],
        ["warm serve", format_ms(warm_s / num_queries, is_seconds=True),
         f"{baseline_rate:.0%} hits", result_hash(warm)],
        [f"mutate x{applied}", "", "disjoint add_edge", ""],
        ["post-mutation warm", format_ms(post_s / num_queries,
                                         is_seconds=True),
         f"{post_rate:.0%} hits ({survivals} survived, "
         f"{invalidations} dropped)", result_hash(post)],
        ["retention", f"{retention:.0%}",
         f"gate >= {MIN_RETENTION:.0%} of baseline", ""],
    ]
    return rows, baseline_rate, post_rate, applied, hashes_equal


def test_dynamic_hit_rate_retention(benchmark):
    rows, baseline_rate, post_rate, applied, hashes_equal = (
        benchmark.pedantic(run_retention, rounds=1, iterations=1)
    )
    assert hashes_equal, "cache survival changed a result hash"
    assert applied > 0, "no disjoint mutations could be generated"
    assert post_rate > 0.0, "no cache entry survived disjoint mutations"
    assert post_rate >= MIN_RETENTION * baseline_rate
    print_table(
        "Warm-cache hit-rate retention under dynamic updates -- "
        f"dbpedia-like ({NUM_QUERIES} queries, k={K}, "
        f"{NUM_MUTATIONS} disjoint inserts)",
        ["stage", "avg / query", "cache", "result hash"],
        rows,
        save_as="dynamic_retention",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced load; exit non-zero on gate failure")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--mutations", type=int, default=None)
    args = parser.parse_args(argv)
    num_queries = args.queries or (10 if args.smoke else NUM_QUERIES)
    num_mutations = args.mutations or NUM_MUTATIONS

    rows, baseline_rate, post_rate, applied, hashes_equal = run_retention(
        num_queries, num_mutations
    )
    print_table(
        f"Warm-cache hit-rate retention ({num_queries} queries, k={K}, "
        f"{num_mutations} disjoint inserts)",
        ["stage", "avg / query", "cache", "result hash"],
        rows,
        save_as=None if args.smoke else "dynamic_retention",
    )
    failures = []
    if not hashes_equal:
        failures.append("cache survival changed a result hash")
    if applied == 0:
        failures.append("no disjoint mutations could be generated")
    if post_rate <= 0.0:
        failures.append("post-mutation warm hit rate is 0%")
    elif post_rate < MIN_RETENTION * baseline_rate:
        failures.append(
            f"hit-rate retention {post_rate:.0%} < "
            f"{MIN_RETENTION:.0%} of baseline {baseline_rate:.0%}"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("dynamic smoke OK" if args.smoke else "dynamic benchmark OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
